"""Blocking wire client for the forecast HTTP transport.

:class:`ForecastClient` speaks the frame codec over a persistent
``http.client.HTTPConnection`` (HTTP/1.1 keep-alive, so a client pays
the TCP handshake once, not per request).  Failure handling mirrors the
serving taxonomy:

* 503 frames (``queue_full``, ``not_ready``) are **retried** with
  linear backoff up to ``retries`` times, then raised as the mapped
  exception (:class:`~repro.serving.errors.QueueFull` /
  :class:`~repro.serving.errors.ServingError`);
* 4xx frames raise immediately
  (:class:`~repro.serving.errors.ModelNotFound`,
  :class:`~repro.serving.errors.InvalidRequest`, ...);
* a dropped keep-alive connection is re-dialed once per request —
  stale-connection races are indistinguishable from a server restart,
  and both are safe to retry because forecasts are idempotent.

One instance owns one connection and is **not** thread-safe; give each
thread its own client (that is exactly what
:class:`~repro.serving.loadgen.WireDriver` does for load generation).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from urllib.parse import quote

import numpy as np

from ...obs.trace import get_recorder, mint_span_id, mint_trace_id
from ..errors import ServingError
from . import codec

__all__ = ["ForecastClient"]

#: Statuses carrying retryable error frames (admission shed / warm-up),
#: derived from the codec's single source of truth.
_RETRYABLE_STATUSES = codec.retryable_statuses()


class ForecastClient:
    """Blocking client for one serving endpoint.

    Parameters
    ----------
    host, port:
        The serving address (the multi-worker launcher's shared port).
    timeout:
        Per-request socket timeout in seconds.
    retries:
        How many times to retry a retryable failure (503 frames and
        re-dials after connection loss) before raising.
    backoff_s:
        Sleep between retry attempts, growing linearly (``backoff_s *
        attempt``) so a draining queue gets room to clear.
    trace:
        ``True`` mints a trace id per forecast call and sends it in the
        wire frame's control header; ``False`` never traces; ``None``
        (default) follows the process trace recorder's enabled flag
        (``REPRO_OBS=1``).  The id of the most recent traced call is
        kept on :attr:`last_trace_id` for correlation against the
        server's ``GET /v1/traces`` export.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.05,
        trace: bool | None = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.trace = trace
        #: Trace id of the most recent traced forecast call (or None).
        self.last_trace_id: str | None = None
        self._conn: http.client.HTTPConnection | None = None

    def _mint_trace(self) -> dict | None:
        """Wire trace header for one forecast call, or ``None``."""
        enabled = (
            get_recorder().enabled if self.trace is None else self.trace
        )
        if not enabled:
            return None
        self.last_trace_id = mint_trace_id()
        return {"id": self.last_trace_id, "span": mint_span_id()}

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            conn.connect()
            # Request line/headers and the frame body are separate
            # writes; without TCP_NODELAY the body can stall behind the
            # server's delayed ACK (~40 ms), which would dominate every
            # round trip on an otherwise sub-millisecond path.
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conn = conn
        return self._conn

    def close(self) -> None:
        """Drop the persistent connection (re-dialed on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ForecastClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, method: str, path: str, body: bytes | None,
                   content_type: str | None) -> tuple[int, bytes]:
        """One request/response over the kept-alive connection.

        A connection that died between requests (server restart, idle
        reaper) surfaces as a send/recv error on a *previously working*
        socket; re-dial once before counting it as a retryable failure.
        """
        headers = {}
        if content_type is not None:
            headers["Content-Type"] = content_type
        for attempt in (0, 1):
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                return response.status, payload
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _request(self, method: str, path: str, body: bytes | None = None,
                 content_type: str | None = None) -> tuple[int, bytes]:
        """Round-trip with the retry policy applied."""
        last_error: BaseException | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff_s * attempt)
            try:
                status, payload = self._roundtrip(method, path, body, content_type)
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError) as exc:
                last_error = exc
                continue
            if status in _RETRYABLE_STATUSES and attempt < self.retries:
                last_error = None
                continue
            return status, payload
        if last_error is not None:
            raise ServingError(
                f"could not reach {self.host}:{self.port} after "
                f"{self.retries + 1} attempts: {last_error}"
            ) from last_error
        return status, payload  # the final retryable response

    def _record_client_span(
        self, trace: dict, model: str, starts: int, start_monotonic: float
    ) -> None:
        """The root ``client.request`` span, ids matching the wire header.

        Recorded directly (not via ``record_span``) because the span id
        must be the one already sent on the wire, so the server's
        ``server.request`` span nests under it.
        """
        get_recorder().record({
            "trace": trace["id"],
            "span": trace["span"],
            "parent": None,
            "name": "client.request",
            "start": start_monotonic,
            "dur": time.monotonic() - start_monotonic,
            "wall": time.time(),
            "attrs": {"model": model, "starts": starts},
        })

    # ------------------------------------------------------------------
    # Forecast API
    # ------------------------------------------------------------------
    def forecast_one(self, model: str, start: int) -> np.ndarray:
        """One window start -> its ``(horizon, N_u)`` forecast block."""
        trace = self._mint_trace()
        began = time.monotonic()
        status, payload = self._request(
            "POST",
            f"/v1/forecast/{quote(str(model), safe='/')}",
            body=codec.encode_request([start], trace=trace),
            content_type=codec.CONTENT_TYPE,
        )
        del status  # error frames carry their own identity
        result = codec.decode_array(payload)
        if trace is not None:
            self._record_client_span(trace, model, 1, began)
        return result

    def forecast(self, model: str, window_starts) -> np.ndarray:
        """Many window starts -> stacked ``(k, horizon, N_u)`` forecasts."""
        trace = self._mint_trace()
        began = time.monotonic()
        body = codec.encode_request(window_starts, trace=trace)
        status, payload = self._request(
            "POST",
            f"/v1/forecast_many/{quote(str(model), safe='/')}",
            body=body,
            content_type=codec.CONTENT_TYPE,
        )
        del status
        result = codec.decode_array(payload)
        if trace is not None:
            self._record_client_span(
                trace, model, int(np.asarray(window_starts).size), began
            )
        return result

    # ------------------------------------------------------------------
    # Introspection API
    # ------------------------------------------------------------------
    def _get_json(self, path: str, *, retry: bool = True) -> tuple[int, dict]:
        if retry:
            status, payload = self._request("GET", path)
        else:
            status, payload = self._roundtrip("GET", path, None, None)
        try:
            return status, json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServingError(
                f"non-JSON response from {path} (status {status})"
            ) from exc

    def models(self) -> list[str]:
        """Hosted model keys."""
        status, payload = self._get_json("/v1/models")
        if status != 200:
            raise ServingError(f"/v1/models failed with status {status}: {payload}")
        return list(payload["models"])

    def stats(self) -> dict:
        """Worker telemetry: transport counters + runtime stats."""
        status, payload = self._get_json("/v1/stats")
        if status != 200:
            raise ServingError(f"/v1/stats failed with status {status}: {payload}")
        return payload

    def metrics_text(self) -> str:
        """The worker's Prometheus exposition (``GET /metrics``)."""
        status, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ServingError(f"/metrics failed with status {status}")
        return payload.decode("utf-8")

    def traces(self, trace_id: str | None = None) -> list[dict]:
        """Span records from the worker's ``GET /v1/traces`` JSONL export."""
        path = "/v1/traces" + (f"?trace={quote(trace_id)}" if trace_id else "")
        status, payload = self._request("GET", path)
        if status != 200:
            raise ServingError(f"/v1/traces failed with status {status}")
        return [
            json.loads(line)
            for line in payload.decode("utf-8").splitlines()
            if line.strip()
        ]

    def batch_log(self, model: str) -> list[np.ndarray]:
        """Logged predict-batch compositions (parity certification)."""
        status, payload = self._get_json(
            f"/v1/batch_log/{quote(str(model), safe='/')}"
        )
        if status != 200:
            raise ServingError(
                f"/v1/batch_log failed with status {status}: {payload}"
            )
        return [np.asarray(batch, dtype=int) for batch in payload["batches"]]

    def health(self) -> dict:
        """One liveness probe (no retries): the raw ``/healthz`` payload.

        Unreachable servers raise ``ConnectionError``/``OSError`` —
        callers polling for startup catch those (see :meth:`wait_ready`).
        """
        _status, payload = self._get_json("/healthz", retry=False)
        return payload

    def wait_ready(self, timeout: float = 30.0, poll_s: float = 0.05) -> bool:
        """Poll ``/healthz`` until the worker reports ready (or timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if self.health().get("ready"):
                    return True
            except (ConnectionError, http.client.HTTPException, OSError,
                    ServingError):
                self.close()
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)
