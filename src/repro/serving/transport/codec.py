"""Wire codec: JSON control frames + raw little-endian array payloads.

Every body on the wire — request, response, or error — is one **frame**:

.. code-block:: text

    offset  size  field
    0       4     magic  b"RPF1"
    4       2     codec version (u16, little-endian; currently 1)
    6       4     header length H (u32, little-endian)
    10      4     payload length P (u32, little-endian)
    14      H     header: UTF-8 JSON object with a "kind" field
    14+H    P     payload: raw bytes (array frames: C-order,
                  little-endian, dtype/shape in the header)

The JSON header carries control data (window starts, dtype, shape,
error codes); bulk numerics ride in the payload untouched, so a decoded
array is **bitwise** the encoder's array — ``np.frombuffer`` on the
payload, no text round-trip, NaN payload bits preserved.  Both length
fields are checked against the actual body, so truncated or padded
frames fail loudly instead of mis-parsing.

Frame kinds:

* ``forecast`` — request: ``{"kind": "forecast", "starts": [ints]}``.
* ``array`` — response: ``{"kind": "array", "dtype": "<f8",
  "shape": [...]}`` + payload bytes.
* ``error`` — structured failure: ``{"kind": "error", "code": ...,
  "message": ...}``; :data:`ERROR_CODES` maps each code to the
  in-process exception class and HTTP status, so transport errors are
  1:1 with :mod:`repro.serving.errors`.

Versioning: the u16 in the prelude is the only version negotiation;
a decoder refuses frames from a different major version.  The HTTP
layer additionally stamps :data:`CONTENT_TYPE` (which embeds the
version) on every frame body.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from ..errors import InvalidRequest, ModelNotFound, QueueFull, ServingError

__all__ = [
    "CODEC_VERSION",
    "CONTENT_TYPE",
    "CodecError",
    "ERROR_CODES",
    "decode_array",
    "decode_error",
    "decode_frame",
    "decode_request",
    "decode_request_meta",
    "encode_array",
    "encode_error",
    "encode_frame",
    "encode_request",
    "exception_to_error",
]

MAGIC = b"RPF1"
CODEC_VERSION = 1
#: Stamped on every frame body by the HTTP layer; embeds the codec version.
CONTENT_TYPE = f"application/x-repro-frame; version={CODEC_VERSION}"

#: Prelude: magic, version, header length, payload length (little-endian).
_PRELUDE = struct.Struct("<4sHII")

#: Upper bound on the JSON header alone (the transport separately bounds
#: whole request bodies); a frame claiming more is corrupt or hostile.
MAX_HEADER_BYTES = 1 << 20


class CodecError(InvalidRequest):
    """A wire frame could not be decoded (truncated, mis-versioned, corrupt)."""


# ----------------------------------------------------------------------
# Frame layer
# ----------------------------------------------------------------------
def encode_frame(header: dict, payload: bytes = b"") -> bytes:
    """Serialise one frame from a JSON-able header and raw payload bytes."""
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _PRELUDE.pack(MAGIC, CODEC_VERSION, len(head), len(payload)) + head + payload


def decode_frame(body: bytes) -> tuple[dict, bytes]:
    """Parse one frame; returns ``(header, payload)``.

    Raises :class:`CodecError` on anything that is not exactly one
    well-formed current-version frame: short prelude, wrong magic,
    version mismatch, length fields disagreeing with the body, or a
    header that is not a JSON object with a ``kind``.
    """
    if len(body) < _PRELUDE.size:
        raise CodecError(
            f"truncated frame: {len(body)} bytes is shorter than the "
            f"{_PRELUDE.size}-byte prelude"
        )
    magic, version, header_len, payload_len = _PRELUDE.unpack_from(body)
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != CODEC_VERSION:
        raise CodecError(
            f"codec version mismatch: frame is v{version}, this codec is "
            f"v{CODEC_VERSION}"
        )
    if header_len > MAX_HEADER_BYTES:
        raise CodecError(f"frame header claims {header_len} bytes (corrupt)")
    expected = _PRELUDE.size + header_len + payload_len
    if len(body) != expected:
        kind = "truncated" if len(body) < expected else "oversized"
        raise CodecError(
            f"{kind} frame: {len(body)} bytes, prelude declares {expected}"
        )
    head = body[_PRELUDE.size : _PRELUDE.size + header_len]
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"frame header is not valid JSON: {exc}") from None
    if not isinstance(header, dict) or "kind" not in header:
        raise CodecError("frame header must be a JSON object with a 'kind'")
    return header, body[_PRELUDE.size + header_len :]


# ----------------------------------------------------------------------
# Array frames
# ----------------------------------------------------------------------
def encode_array(values: np.ndarray) -> bytes:
    """Encode an array bitwise: little-endian C-order payload + dtype/shape."""
    values = np.asarray(values)
    dtype = values.dtype.newbyteorder("<")
    payload = np.ascontiguousarray(values, dtype=dtype).tobytes()
    header = {"kind": "array", "dtype": dtype.str, "shape": list(values.shape)}
    return encode_frame(header, payload)


def decode_array(body: bytes) -> np.ndarray:
    """Decode an ``array`` frame back to the bitwise-identical ndarray."""
    header, payload = decode_frame(body)
    if header["kind"] == "error":
        raise decode_error(header)
    if header["kind"] != "array":
        raise CodecError(f"expected an array frame, got kind {header['kind']!r}")
    try:
        dtype = np.dtype(header["dtype"])
        shape = tuple(int(n) for n in header["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed array header: {exc}") from None
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(payload) != expected:
        raise CodecError(
            f"array payload is {len(payload)} bytes, header shape "
            f"{shape} x {dtype.str} needs {expected}"
        )
    # bytearray copy: frombuffer over immutable bytes would yield a
    # read-only array, and decoded forecasts must behave exactly like
    # direct ``predict`` outputs (which are writable).
    return np.frombuffer(bytearray(payload), dtype=dtype).reshape(shape)


# ----------------------------------------------------------------------
# Forecast requests
# ----------------------------------------------------------------------
def encode_request(window_starts, *, trace: dict | None = None) -> bytes:
    """Encode a forecast request for one or many window starts.

    ``trace`` (optional) is a ``{"id": <hex>, "span": <hex>}`` trace
    context; it rides as an additive header field, so traced and
    untraced requests share the same codec version.
    """
    starts = [int(s) for s in np.asarray(window_starts, dtype=int).ravel()]
    header: dict = {"kind": "forecast", "starts": starts}
    if trace is not None:
        header["trace"] = {
            "id": str(trace["id"]), "span": str(trace["span"])
        }
    return encode_frame(header)


def decode_request(body: bytes) -> list[int]:
    """Decode a ``forecast`` frame; validates the starts list.

    Raises :class:`CodecError` for a malformed frame and
    :class:`~repro.serving.errors.InvalidRequest` for a well-formed
    frame asking something unservable (no starts, non-integers).
    """
    starts, _trace = decode_request_meta(body)
    return starts


def decode_request_meta(body: bytes) -> tuple[list[int], dict | None]:
    """Decode a ``forecast`` frame with its optional trace context.

    Returns ``(starts, trace)`` where ``trace`` is the header's
    ``{"id": ..., "span": ...}`` dict or ``None``.  A malformed trace
    field is silently dropped — observability must never fail a
    request that would otherwise serve.
    """
    header, _payload = decode_frame(body)
    if header["kind"] != "forecast":
        raise CodecError(f"expected a forecast frame, got kind {header['kind']!r}")
    starts = header.get("starts")
    if not isinstance(starts, list) or not starts:
        raise InvalidRequest("forecast request needs a non-empty 'starts' list")
    if not all(isinstance(s, int) and not isinstance(s, bool) for s in starts):
        raise InvalidRequest("window starts must be integers")
    trace = header.get("trace")
    if (
        not isinstance(trace, dict)
        or not isinstance(trace.get("id"), str)
        or not isinstance(trace.get("span"), str)
        or not trace["id"]
        or not trace["span"]
    ):
        trace = None
    return starts, trace


# ----------------------------------------------------------------------
# Error frames
# ----------------------------------------------------------------------
#: code -> (exception class, HTTP status, retryable).  The transport's
#: contract: raising the class on one side produces the code on the
#: wire; decoding the code re-raises the same class on the other side.
ERROR_CODES: dict[str, tuple[type, int, bool]] = {
    "queue_full": (QueueFull, 503, True),
    "not_ready": (ServingError, 503, True),
    "model_not_found": (ModelNotFound, 404, False),
    "invalid_request": (InvalidRequest, 400, False),
    "codec_error": (CodecError, 400, False),
    "body_too_large": (InvalidRequest, 413, False),
    "internal": (ServingError, 500, False),
}


def retryable_statuses() -> frozenset[int]:
    """HTTP statuses that only ever carry retryable error frames."""
    return frozenset(
        status for _cls, status, retryable in ERROR_CODES.values() if retryable
    )


def exception_to_error(exc: BaseException) -> tuple[str, int]:
    """Map an exception to its ``(code, http_status)`` wire identity.

    The status always comes from :data:`ERROR_CODES`, so reclassifying
    a code there is the single place wire behaviour changes.
    """
    if isinstance(exc, QueueFull):
        code = "queue_full"
    elif isinstance(exc, ModelNotFound):
        code = "model_not_found"
    elif isinstance(exc, CodecError):
        code = "codec_error"
    elif isinstance(exc, InvalidRequest):
        code = "invalid_request"
    else:
        code = "internal"
    return code, ERROR_CODES[code][1]


def encode_error(code: str, message: str) -> bytes:
    """Encode a structured error frame (``code`` must be a known code)."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return encode_frame({"kind": "error", "code": code, "message": message})


def decode_error(header: dict) -> ServingError:
    """Instantiate the in-process exception an ``error`` header names."""
    code = header.get("code")
    message = header.get("message", "")
    cls = ERROR_CODES.get(code, (ServingError,))[0]
    return cls(f"{message} [wire code: {code}]" if code else message)
