"""Checkpoint bundles and the multi-worker serving launcher.

**Bundle** — a directory a server can boot from with no training:
one ``.npz`` per model (PR 2's :func:`~repro.core.save_forecaster`
format) plus a ``manifest.json`` recording, per model key, the synthetic
dataset recipe (name / sensors / days / seed — enough to rebuild the
exact data context deterministically), the spatial split's index sets,
and optional warm-up window starts.  :func:`save_bundle` writes one from
fitted models; :func:`load_bundle` restores every forecaster.  A bundle
may additionally carry a ``cache/`` directory — an exported
:class:`~repro.engine.ArtifactStore` disk tier holding the DTW pairs
and warmed ``forecast_window`` blocks from training time — in which
case every worker boots with a hot result cache: warm-up windows are
served from the store instead of recomputed, and the content-addressed
scopes guarantee the served bytes equal the training-process bytes.

**Launcher** — ``python -m repro.serving serve --checkpoint-dir D
--workers N``: each worker process loads the bundle, registers every
model in its own :class:`~repro.serving.ServingRuntime`, warms the
result caches through the real scheduler path, binds the shared public
port with ``SO_REUSEPORT`` (the kernel load-balances accepted
connections across workers) plus a private per-worker **control port**
(stats / batch-log introspection that must target one specific worker),
writes a ``worker-<i>.json`` state file, and only then reports ready.
On ``SIGTERM``/``SIGINT`` a worker drains gracefully: stop accepting,
barrier on every accepted request, then shut the runtime down.

Platforms without ``SO_REUSEPORT`` fall back to one process whose
``ThreadingHTTPServer`` already serves N concurrent connections on N
threads.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import socket
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ...engine import ArtifactStore, default_store_scope
from ..runtime import ServingRuntime
from ..service import ForecastService
from .http_server import DEFAULT_MAX_BODY_BYTES, ForecastHTTPServer

__all__ = [
    "BundleEntry",
    "ServeConfig",
    "bundle_cache_dir",
    "load_bundle",
    "run_worker",
    "launch",
    "save_bundle",
    "reuse_port_supported",
]

MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 1
_CACHE_SUBDIR = "cache"


def reuse_port_supported() -> bool:
    """Whether this platform can kernel-balance one port across processes."""
    return hasattr(socket, "SO_REUSEPORT")


# ----------------------------------------------------------------------
# Bundle persistence
# ----------------------------------------------------------------------
@dataclass
class BundleEntry:
    """One model's slot in a serving bundle.

    ``dataset`` is the synthetic-recipe dict (``name`` plus the
    ``num_sensors`` / ``num_days`` / ``seed`` overrides) that rebuilds
    the forecaster's data context bit-identically on load.
    """

    forecaster: object  # fitted STSMForecaster (carries .split context)
    dataset: dict
    warmup_starts: list[int] = field(default_factory=list)


def _slug(key: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in key)


def save_bundle(
    directory: str | Path,
    entries: dict[str, BundleEntry],
    store: ArtifactStore | None = None,
) -> Path:
    """Write a servable checkpoint bundle for ``entries``.

    ``store`` additionally exports the artifact store's full contents —
    DTW pairs, mask adjacencies and (most usefully) warmed
    ``forecast_window`` blocks — into the bundle's ``cache/`` directory,
    so servers booting from the bundle start hot.
    """
    from ...core import save_forecaster  # local import: core pulls the full model stack

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict = {"format_version": _MANIFEST_VERSION, "models": {}}
    if store is not None:
        exported = store.export(directory / _CACHE_SUBDIR)
        manifest["cache"] = {"dir": _CACHE_SUBDIR, "entries": exported}
    slugs: dict[str, str] = {}
    for key, entry in sorted(entries.items()):
        if "name" not in entry.dataset:
            raise ValueError(f"bundle entry {key!r} needs a dataset 'name'")
        checkpoint = f"{_slug(key)}.npz"
        if checkpoint in slugs:
            raise ValueError(
                f"model keys {slugs[checkpoint]!r} and {key!r} both map to "
                f"checkpoint file {checkpoint!r}; rename one"
            )
        slugs[checkpoint] = key
        save_forecaster(entry.forecaster, directory / checkpoint)
        split = entry.forecaster.split
        manifest["models"][key] = {
            "checkpoint": checkpoint,
            "dataset": dict(entry.dataset),
            "split": {
                "train": [int(i) for i in split.train],
                "validation": [int(i) for i in split.validation],
                "test": [int(i) for i in split.test],
                "name": split.name,
            },
            "warmup_starts": [int(s) for s in entry.warmup_starts],
        }
    path = directory / MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def load_bundle(
    directory: str | Path,
    backend: str | None = None,
    device: str | None = None,
    dtype: str | None = None,
) -> dict[str, tuple[object, list[int]]]:
    """Restore every model in a bundle: ``{key: (forecaster, warmup)}``.

    ``backend`` / ``device`` / ``dtype`` override every restored model's
    saved backend fields (checkpoint state is host numpy, so a bundle
    fitted on numpy serves on torch and vice versa); ``None`` keeps the
    per-model saved values.
    """
    from ...core import load_forecaster
    from ...data.splits import SpaceSplit
    from ...data.synthetic import make_dataset

    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not path.exists():
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {directory}")
    manifest = json.loads(path.read_text())
    if manifest.get("format_version") != _MANIFEST_VERSION:
        raise ValueError(
            f"unsupported bundle format {manifest.get('format_version')!r}"
        )
    models: dict[str, tuple[object, list[int]]] = {}
    for key, spec in manifest["models"].items():
        recipe = dict(spec["dataset"])
        dataset = make_dataset(
            recipe.pop("name"),
            num_sensors=recipe.pop("num_sensors", None),
            num_days=recipe.pop("num_days", None),
            seed=recipe.pop("seed", None),
        )
        if recipe:
            raise ValueError(f"unknown dataset recipe fields for {key!r}: {recipe}")
        split = SpaceSplit(
            train=np.asarray(spec["split"]["train"], dtype=int),
            validation=np.asarray(spec["split"]["validation"], dtype=int),
            test=np.asarray(spec["split"]["test"], dtype=int),
            name=spec["split"].get("name", ""),
        )
        forecaster = load_forecaster(
            directory / spec["checkpoint"],
            dataset,
            split,
            backend=backend,
            device=device,
            dtype=dtype,
        )
        models[key] = (forecaster, [int(s) for s in spec.get("warmup_starts", [])])
    return models


def bundle_cache_dir(directory: str | Path) -> Path | None:
    """The bundle's exported artifact-store directory, if it has one.

    Tolerant by design: a missing or unreadable manifest falls back to
    probing the conventional ``cache/`` subdirectory, and a manifest
    pointing at a directory that no longer exists reads as "no cache" —
    a bundle must stay servable (cold) even if its cache was deleted.
    """
    directory = Path(directory)
    candidate = directory / _CACHE_SUBDIR
    try:
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        configured = manifest.get("cache", {}).get("dir")
        if configured:
            candidate = directory / configured
    except (OSError, ValueError, AttributeError):
        pass
    return candidate if candidate.is_dir() else None


# ----------------------------------------------------------------------
# Launcher
# ----------------------------------------------------------------------
@dataclass
class ServeConfig:
    """Everything one worker (or the whole fleet) needs to serve."""

    checkpoint_dir: str
    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 1
    deadline_ms: float = 2.0
    max_batch: int = 64
    max_queue: int = 1024
    admission: str = "block"
    cache_size: int = 1024
    log_batches: bool = True
    #: Opt-in: serve result-cache hits on the handler thread (no queue
    #: hop).  Recovers a large share of single-worker throughput under
    #: high fan-in (see BENCH_transport.json); off by default to match
    #: the runtime's strict micro-batch semantics.
    cache_fast_path: bool = False
    warm_up: bool = True
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    drain_timeout_s: float = 30.0
    #: Where ``worker-<i>.json`` state files go (default: checkpoint_dir).
    state_dir: str | None = None
    #: Backend overrides applied to every model in the bundle on load
    #: (None keeps each checkpoint's saved backend/device/dtype).
    backend: str | None = None
    device: str | None = None
    dtype: str | None = None
    #: Artifact-store overrides (the shared ``--cache-*`` flag surface).
    #: ``cache_dir`` points workers at a disk tier other than the
    #: bundle's own ``cache/``; ``cache_memory_items`` bounds the
    #: memory tier.  Either way the store opens read-only — a serving
    #: worker must never mutate (or GC) a tier it does not own.
    cache_dir: str | None = None
    cache_memory_items: int | None = None

    def resolved_state_dir(self) -> Path:
        return Path(self.state_dir) if self.state_dir else Path(self.checkpoint_dir)


def _build_runtime(config: ServeConfig) -> tuple[ServingRuntime, dict[str, list[int]]]:
    """Load the bundle and host every model; returns (runtime, warmups).

    A bundle carrying an exported artifact store boots hot: each model's
    result cache is a scoped view over the store, so warm-up (and live
    traffic for previously served windows) hits disk-persisted blocks
    instead of recomputing them.  The scope is derived from the restored
    model's content — bitwise identical to the training process's — so
    hits are exactly the bytes that process computed.
    """
    bundle = load_bundle(
        config.checkpoint_dir,
        backend=config.backend,
        device=config.device,
        dtype=config.dtype,
    )
    cache_dir = (
        config.cache_dir
        if config.cache_dir is not None
        else bundle_cache_dir(config.checkpoint_dir)
    )
    # read_only: a serving worker must neither mutate the shared bundle
    # nor accumulate an ever-growing dirty buffer it never persists —
    # and a read-only store refuses gc() outright, so no quota can ever
    # reap a tier some other process owns.
    store = (
        ArtifactStore(
            maxsize=config.cache_memory_items,
            disk_dir=cache_dir,
            read_only=True,
        )
        if cache_dir is not None
        else None
    )
    runtime = ServingRuntime(
        deadline_ms=config.deadline_ms,
        max_batch=config.max_batch,
        max_queue=config.max_queue,
        admission=config.admission,
        cache_size=config.cache_size,
        log_batches=config.log_batches,
        cache_fast_path=config.cache_fast_path,
    )
    if store is not None:
        # Cache telemetry on /v1/stats: the bundle store's per-namespace
        # entry/byte/hit counters ride along with serving stats.
        runtime.attach_store(store)
    warmups = {}
    for key, (forecaster, warmup_starts) in bundle.items():
        scope = default_store_scope(forecaster) if store is not None else None
        if store is not None and scope is not None:
            service = ForecastService(
                forecaster,
                max_batch_size=config.max_batch,
                log_batches=config.log_batches,
                store=store,
                store_scope=scope,
            )
            runtime.register(key, service)
        else:
            # No derivable content scope (no snapshotable network):
            # serve cold with a private cache rather than refusing to
            # boot — a bundle must stay servable in every case.
            runtime.register(key, forecaster)
        warmups[key] = warmup_starts
    return runtime, warmups


def run_worker(
    config: ServeConfig,
    index: int = 0,
    *,
    reuse_port: bool | None = None,
    stop_event: threading.Event | None = None,
) -> int:
    """Boot one worker and serve until SIGTERM/SIGINT (or ``stop_event``).

    Startup order is the readiness contract: bind (kernel can already
    balance to us, but we answer 503), warm every model through its own
    scheduler, write the state file, *then* flip ready.  Shutdown is the
    graceful drain: close the listeners, barrier on accepted requests,
    shut the runtime down.
    """
    if reuse_port is None:
        reuse_port = config.workers > 1 and reuse_port_supported()
    label = f"worker-{index}"
    runtime, warmups = _build_runtime(config)
    server = ForecastHTTPServer(
        runtime,
        config.host,
        config.port,
        max_body_bytes=config.max_body_bytes,
        reuse_port=reuse_port,
        worker_label=label,
    )
    # Private per-worker port: stats/batch-log introspection that must
    # reach *this* worker, not whichever one the kernel picks next.
    # Shares the public listener's counters so its /v1/stats reports the
    # worker's real traffic.
    control = ForecastHTTPServer(
        runtime, config.host, 0,
        max_body_bytes=config.max_body_bytes, worker_label=label,
        counters=server.counters,
    )
    stop = stop_event if stop_event is not None else threading.Event()
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_args: stop.set())

    state_path = config.resolved_state_dir() / f"{label}.json"
    try:
        server.start()
        control.start()
        if config.warm_up:
            for key, starts in warmups.items():
                if starts:
                    runtime.warm_up(key, np.asarray(starts, dtype=int))
        # Publish the state file first (atomically: a poller must never
        # see a half-written JSON), then flip ready — the documented
        # startup contract: bind -> warm -> state file -> ready.
        state_path.parent.mkdir(parents=True, exist_ok=True)
        staging = state_path.with_suffix(".json.tmp")
        staging.write_text(json.dumps({
            "worker": label,
            "pid": os.getpid(),
            "host": server.host,
            "port": server.port,
            "control_port": control.port,
            "models": runtime.models,
            "ready": True,
        }, indent=2) + "\n")
        os.replace(staging, state_path)
        server.set_ready()
        control.set_ready()
        stop.wait()
        return 0
    finally:
        server.shutdown()
        control.shutdown()
        runtime.drain(timeout=config.drain_timeout_s)
        runtime.shutdown()
        state_path.unlink(missing_ok=True)


def _worker_entry(config_fields: dict, index: int) -> None:
    """Spawn-safe child entry point (module-level for pickling)."""
    raise SystemExit(run_worker(ServeConfig(**config_fields), index))


def _pick_free_port(host: str) -> int:
    """Reserve an ephemeral port number for a multi-worker fleet.

    The probe socket closes before workers bind, so the number can in
    principle be stolen in between — acceptable for benchmarks and
    tests, which is the only place ``port=0`` plus ``workers>1`` makes
    sense (production fleets pin a port).
    """
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def launch(config: ServeConfig) -> int:
    """Serve with ``config.workers`` processes (or in-process fallback).

    Multi-worker mode spawns fresh interpreter children (no inherited
    locks or threads), each running :func:`run_worker` against the same
    bundle and shared ``SO_REUSEPORT`` port.  The parent forwards
    SIGTERM/SIGINT and reaps.  Returns a process exit code.
    """
    if config.workers < 1:
        raise ValueError(f"workers must be >= 1, got {config.workers}")
    if config.workers == 1 or not reuse_port_supported():
        if config.workers > 1:
            print(
                f"[serving] SO_REUSEPORT unavailable on this platform; "
                f"falling back to 1 process with per-connection threads"
            )
        return run_worker(config, 0)

    import multiprocessing as mp

    if config.port == 0:
        config = dataclasses.replace(config, port=_pick_free_port(config.host))
    context = mp.get_context("spawn")
    fields = dataclasses.asdict(config)
    processes = [
        context.Process(target=_worker_entry, args=(fields, index), daemon=False)
        for index in range(config.workers)
    ]
    for process in processes:
        process.start()

    def _forward(signum, _frame):
        for process in processes:
            if process.is_alive():
                process.terminate()  # SIGTERM -> child's graceful drain

    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, _forward)
    exit_code = 0
    try:
        for process in processes:
            process.join()
            exit_code = exit_code or (process.exitcode or 0)
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
    return exit_code
