"""Wire-level serving: codec, HTTP server, client, multi-worker launcher.

The in-process serving stack (service -> scheduler -> runtime) ends at
a python call boundary; this package puts it behind a socket:

* :mod:`~repro.serving.transport.codec` — versioned binary frames:
  JSON control headers + raw little-endian array payloads, so served
  forecasts round-trip **bitwise**.
* :class:`ForecastHTTPServer` — threaded HTTP/1.1 front door over a
  :class:`~repro.serving.ServingRuntime` (forecast routes, health,
  stats, batch-log introspection, readiness gating, ``SO_REUSEPORT``).
* :class:`ForecastClient` — blocking client with connection reuse,
  timeouts and retry-on-503.
* :mod:`~repro.serving.transport.workers` — checkpoint bundles and the
  ``python -m repro.serving serve`` multi-process launcher.
"""

from .client import ForecastClient
from .codec import CODEC_VERSION, CONTENT_TYPE, CodecError
from .http_server import DEFAULT_MAX_BODY_BYTES, ForecastHTTPServer
from .workers import (
    BundleEntry,
    ServeConfig,
    launch,
    load_bundle,
    reuse_port_supported,
    run_worker,
    save_bundle,
)

__all__ = [
    "BundleEntry",
    "CODEC_VERSION",
    "CONTENT_TYPE",
    "CodecError",
    "DEFAULT_MAX_BODY_BYTES",
    "ForecastClient",
    "ForecastHTTPServer",
    "ServeConfig",
    "launch",
    "load_bundle",
    "reuse_port_supported",
    "run_worker",
    "save_bundle",
]
