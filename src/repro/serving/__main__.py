"""CLI: launch and exercise the wire serving stack.

Examples::

    # Fit two small models and write a servable checkpoint bundle
    python -m repro.serving demo-bundle --output-dir /tmp/bundle --epochs 2

    # Serve it: 4 worker processes behind one SO_REUSEPORT port
    python -m repro.serving serve --checkpoint-dir /tmp/bundle \
        --port 8080 --workers 4

    # Query it
    python -m repro.serving query --port 8080 --model stsm/pems-bay --start 420
"""

from __future__ import annotations

import argparse
import json
import sys

from ..engine import add_cache_arguments


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("serve", help="serve a checkpoint bundle over HTTP")
    p.add_argument("--checkpoint-dir", required=True,
                   help="bundle directory (manifest.json + per-model .npz)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="public port (0 picks an ephemeral one)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes behind SO_REUSEPORT "
                        "(1 = single process, per-connection threads)")
    p.add_argument("--deadline-ms", type=float, default=2.0,
                   help="per-model micro-batch deadline")
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--max-queue", type=int, default=1024)
    p.add_argument("--admission", choices=("block", "reject"), default="block")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="per-model result-cache capacity")
    p.add_argument("--no-warm-up", action="store_true",
                   help="skip manifest warm-up windows (serve cold)")
    p.add_argument("--fast-path", action="store_true",
                   help="serve cache hits on the handler thread (no "
                        "micro-batch queue hop) — the high-fan-in "
                        "throughput optimisation")
    p.add_argument("--state-dir", default=None,
                   help="where worker-<i>.json state files go "
                        "(default: the checkpoint dir)")
    p.add_argument("--drain-timeout-s", type=float, default=30.0)
    p.add_argument("--backend", default=None,
                   help="array backend override for every served model "
                        "(e.g. numpy_fused, torch); default keeps each "
                        "checkpoint's saved backend")
    p.add_argument("--device", default=None,
                   help="device override for accelerator backends "
                        "(cpu, cuda, cuda:N)")
    p.add_argument("--dtype", default=None, choices=("float32", "float64"),
                   help="compute dtype override for accelerator backends")
    # Shared cache surface: --cache-dir overrides the bundle's own
    # cache/ tier; workers always open it read-only (never GC), so
    # --cache-max-bytes is accepted for CLI uniformity but quota
    # enforcement belongs to whichever writer owns the tier.
    add_cache_arguments(p)


def _add_demo_bundle(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "demo-bundle",
        help="fit small STSM models on synthetic data and save a bundle",
    )
    p.add_argument("--output-dir", required=True)
    p.add_argument("--datasets", nargs="*", default=["pems-bay", "melbourne"])
    p.add_argument("--sensors", type=int, default=16)
    p.add_argument("--days", type=int, default=2)
    p.add_argument("--epochs", type=int, default=1)
    p.add_argument("--hidden", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--warmup-windows", type=int, default=16,
                   help="window starts recorded in the manifest for "
                        "server-side warm-up")
    p.add_argument("--with-cache", action="store_true",
                   help="export a warmed artifact store into the bundle's "
                        "cache/ directory (DTW pairs + precomputed warm-up "
                        "forecast blocks), so servers boot hot")


def _add_query(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("query", help="query a running server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--model", default=None,
                   help="model key (default: first hosted model)")
    p.add_argument("--start", type=int, nargs="*", default=None,
                   help="window start(s); omit for server stats only")


def _cmd_serve(args: argparse.Namespace) -> int:
    from .transport import ServeConfig, launch

    config = ServeConfig(
        checkpoint_dir=args.checkpoint_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        deadline_ms=args.deadline_ms,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        admission=args.admission,
        cache_size=args.cache_size,
        cache_fast_path=args.fast_path,
        warm_up=not args.no_warm_up,
        drain_timeout_s=args.drain_timeout_s,
        state_dir=args.state_dir,
        backend=args.backend,
        device=args.device,
        dtype=args.dtype,
        cache_dir=args.cache_dir,
        cache_memory_items=args.cache_memory_items,
    )
    print(f"[serving] bundle={args.checkpoint_dir} workers={args.workers} "
          f"port={args.port} (SIGTERM drains gracefully)")
    return launch(config)


def _cmd_demo_bundle(args: argparse.Namespace) -> int:
    import numpy as np

    from ..core import STSMConfig, STSMForecaster
    from ..data import WindowSpec, space_split, temporal_split
    from ..data.synthetic import make_dataset
    from ..engine import ArtifactStore, open_store
    from ..evaluation import forecast_window_starts
    from .service import ForecastService
    from .transport import BundleEntry, save_bundle

    # A *private* store installed process-wide: the fits below park
    # their DTW pairs and masked adjacencies in it automatically, so
    # the exported bundle cache carries fit artifacts too, not just
    # the warm-up forecast blocks — but never the contents of a
    # pre-existing $REPRO_CACHE_DIR tier, which would bloat the bundle
    # with every unrelated past fit's artifacts.
    store = open_store(store=ArtifactStore()) if args.with_cache else None
    entries: dict[str, BundleEntry] = {}
    for offset, name in enumerate(args.datasets):
        seed = args.seed + offset
        recipe = {"name": name, "num_sensors": args.sensors,
                  "num_days": args.days, "seed": seed}
        dataset = make_dataset(name, num_sensors=args.sensors,
                               num_days=args.days, seed=seed)
        split = space_split(dataset.coords, "horizontal")
        spec = WindowSpec(input_length=8, horizon=8)
        train_ix, _ = temporal_split(dataset.num_steps)
        config = STSMConfig(
            hidden_dim=args.hidden, num_blocks=1, tcn_levels=2, gcn_depth=1,
            epochs=args.epochs, patience=args.epochs, batch_size=8,
            window_stride=8, top_k=min(6, args.sensors - 1), seed=seed,
        )
        model = STSMForecaster(config)
        print(f"[demo-bundle] fitting stsm/{name} "
              f"({args.sensors} sensors x {args.days} days) ...")
        model.fit(dataset, split, spec, train_ix)
        starts = forecast_window_starts(dataset, spec,
                                        max_windows=args.warmup_windows)
        if store is not None:
            # Precompute the warm-up blocks through the serving path and
            # park them in the store under the model's content scope —
            # the exported cache/ tier then serves them on worker boot.
            ForecastService(model, store=store).forecast(np.asarray(starts))
        entries[f"stsm/{name}"] = BundleEntry(
            forecaster=model,
            dataset=recipe,
            warmup_starts=[int(s) for s in np.asarray(starts)],
        )
    manifest = save_bundle(args.output_dir, entries, store=store)
    print(f"[demo-bundle] wrote {manifest} ({len(entries)} models"
          f"{', warmed cache' if store is not None else ''})")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .transport import ForecastClient

    with ForecastClient(args.host, args.port) as client:
        models = client.models()
        model = args.model if args.model is not None else models[0]
        if args.start:
            block = client.forecast(model, args.start)
            print(f"{model}: starts={args.start} -> shape={block.shape} "
                  f"mean={float(block.mean()):.4f}")
        stats = client.stats()
        print(json.dumps({
            "worker": stats["worker"],
            "models": models,
            "transport": stats["transport"],
            "totals": stats["runtime"]["totals"],
        }, indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Wire-level serving: bundle, serve, query.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_serve(sub)
    _add_demo_bundle(sub)
    _add_query(sub)
    args = parser.parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "demo-bundle":
        return _cmd_demo_bundle(args)
    return _cmd_query(args)


if __name__ == "__main__":
    sys.exit(main())
