"""The spatio-temporal dataset container shared by all models.

Holds the observation matrix, sensor coordinates, the static location
features consumed by selective masking (POI category counts, prosperity
scale, road attributes — paper §4.1), and optionally the road network the
sensors live on (for the road-distance model variants).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.roadnet import RoadNetwork

__all__ = ["LocationFeatures", "SpatioTemporalDataset"]

#: Number of POI categories (paper Table 1).
NUM_POI_CATEGORIES = 26


@dataclass
class LocationFeatures:
    """Static per-location features for the selective masking module.

    Attributes
    ----------
    poi_counts:
        ``(N, 26)`` POI category counts within radius ``r_poi`` (Table 1).
    scale:
        ``(N,)`` prosperity scalar ``l_scale`` (building floors / park area).
    road:
        ``(N, 4)`` road vector: highway_level, maxspeed, is_oneway, lanes.
    """

    poi_counts: np.ndarray
    scale: np.ndarray
    road: np.ndarray

    def __post_init__(self) -> None:
        self.poi_counts = np.asarray(self.poi_counts, dtype=float)
        self.scale = np.asarray(self.scale, dtype=float)
        self.road = np.asarray(self.road, dtype=float)
        n = len(self.poi_counts)
        if self.poi_counts.shape != (n, NUM_POI_CATEGORIES):
            raise ValueError(
                f"poi_counts must be (N, {NUM_POI_CATEGORIES}), got {self.poi_counts.shape}"
            )
        if self.scale.shape != (n,):
            raise ValueError(f"scale must be (N,), got {self.scale.shape}")
        if self.road.shape != (n, 4):
            raise ValueError(f"road must be (N, 4), got {self.road.shape}")

    def __len__(self) -> int:
        return len(self.poi_counts)

    def embedding_matrix(self) -> np.ndarray:
        """The location embedding ``l_i = [l_poi || l_scale || l_road]`` (R^31)."""
        return np.concatenate(
            [self.poi_counts, self.scale[:, None], self.road], axis=1
        )


@dataclass
class SpatioTemporalDataset:
    """Observations plus geometry and static features for one region.

    Attributes
    ----------
    name:
        Dataset identifier (e.g. ``"pems-bay-synth"``).
    values:
        ``(T, N)`` observation matrix (traffic speed or PM2.5).
    coords:
        ``(N, 2)`` planar coordinates in metres.
    steps_per_day:
        Number of observation intervals per day (``T_d``).
    features:
        Static :class:`LocationFeatures` for selective masking.
    road_network:
        Optional :class:`~repro.graph.roadnet.RoadNetwork`.
    interval_minutes:
        Observation interval (5 for PEMS, 15 for Melbourne, 60 for AirQ).
    """

    name: str
    values: np.ndarray
    coords: np.ndarray
    steps_per_day: int
    features: LocationFeatures
    road_network: RoadNetwork | None = None
    interval_minutes: float = 5.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        self.coords = np.asarray(self.coords, dtype=float)
        if self.values.ndim != 2:
            raise ValueError(f"values must be (T, N), got shape {self.values.shape}")
        if self.coords.shape != (self.num_locations, 2):
            raise ValueError(
                f"coords shape {self.coords.shape} does not match N={self.num_locations}"
            )
        if len(self.features) != self.num_locations:
            raise ValueError("features length does not match number of locations")
        if self.steps_per_day <= 0:
            raise ValueError("steps_per_day must be positive")

    @property
    def num_steps(self) -> int:
        """Number of time steps T."""
        return self.values.shape[0]

    @property
    def num_locations(self) -> int:
        """Number of locations N."""
        return self.values.shape[1]

    @property
    def num_days(self) -> float:
        """Length of the record in days."""
        return self.num_steps / self.steps_per_day

    def subset_locations(self, index: np.ndarray, name_suffix: str = "subset") -> "SpatioTemporalDataset":
        """Restrict the dataset to the given location indices."""
        index = np.asarray(index, dtype=int)
        return SpatioTemporalDataset(
            name=f"{self.name}-{name_suffix}",
            values=self.values[:, index],
            coords=self.coords[index],
            steps_per_day=self.steps_per_day,
            features=LocationFeatures(
                poi_counts=self.features.poi_counts[index],
                scale=self.features.scale[index],
                road=self.features.road[index],
            ),
            road_network=self.road_network,
            interval_minutes=self.interval_minutes,
            metadata=dict(self.metadata),
        )

    def subset_steps(self, index: np.ndarray, name_suffix: str = "steps") -> "SpatioTemporalDataset":
        """Restrict the dataset to the given time-step indices."""
        index = np.asarray(index, dtype=int)
        return SpatioTemporalDataset(
            name=f"{self.name}-{name_suffix}",
            values=self.values[index],
            coords=self.coords,
            steps_per_day=self.steps_per_day,
            features=self.features,
            road_network=self.road_network,
            interval_minutes=self.interval_minutes,
            metadata=dict(self.metadata),
        )

    def describe(self) -> dict:
        """Summary statistics in the shape of the paper's Table 2."""
        return {
            "name": self.name,
            "sensors": self.num_locations,
            "steps": self.num_steps,
            "days": round(self.num_days, 2),
            "interval_minutes": self.interval_minutes,
            "steps_per_day": self.steps_per_day,
            "value_mean": round(float(self.values.mean()), 3),
            "value_std": round(float(self.values.std()), 3),
            "value_min": round(float(self.values.min()), 3),
            "value_max": round(float(self.values.max()), 3),
        }
