"""Dataset serialisation.

Synthetic datasets are cheap to regenerate, but saved copies make
experiment runs byte-for-byte reproducible across sessions and let users
ship their own (real) data in the same container format.  Format: one
``.npz`` with a JSON header (road networks are not serialised — they are
regenerable for synthetic data and external for real data).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .dataset import LocationFeatures, SpatioTemporalDataset

__all__ = ["save_dataset", "load_dataset"]

_HEADER_KEY = "__header__"
_FORMAT_VERSION = 1


def save_dataset(dataset: SpatioTemporalDataset, path: str | Path) -> Path:
    """Write a dataset to ``path`` (``.npz``).

    The road network (if any) is *not* stored; ``metadata`` values that are
    numpy arrays are stored, other values must be JSON-serialisable.
    """
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "steps_per_day": dataset.steps_per_day,
        "interval_minutes": dataset.interval_minutes,
        "metadata_scalars": {
            k: v for k, v in dataset.metadata.items() if not isinstance(v, np.ndarray)
        },
        "metadata_arrays": [
            k for k, v in dataset.metadata.items() if isinstance(v, np.ndarray)
        ],
    }
    arrays = {
        "values": dataset.values,
        "coords": dataset.coords,
        "poi_counts": dataset.features.poi_counts,
        "scale": dataset.features.scale,
        "road": dataset.features.road,
        _HEADER_KEY: np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
    }
    for key in header["metadata_arrays"]:
        arrays[f"meta::{key}"] = dataset.metadata[key]
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset(path: str | Path) -> SpatioTemporalDataset:
    """Read a dataset written by :func:`save_dataset`."""
    archive = np.load(Path(path), allow_pickle=False)
    if _HEADER_KEY not in archive:
        raise ValueError(f"{path} is not a saved SpatioTemporalDataset")
    header = json.loads(bytes(archive[_HEADER_KEY]).decode("utf-8"))
    if header.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {header.get('format_version')}")
    metadata = dict(header["metadata_scalars"])
    for key in header["metadata_arrays"]:
        metadata[key] = archive[f"meta::{key}"]
    return SpatioTemporalDataset(
        name=header["name"],
        values=archive["values"],
        coords=archive["coords"],
        steps_per_day=int(header["steps_per_day"]),
        features=LocationFeatures(
            poi_counts=archive["poi_counts"],
            scale=archive["scale"],
            road=archive["road"],
        ),
        road_network=None,
        interval_minutes=float(header["interval_minutes"]),
        metadata=metadata,
    )
