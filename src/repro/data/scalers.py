"""Value scalers.

Standard practice for the kriging/forecasting baselines (and kept for STSM):
fit a z-score scaler on the *observed training* values only — unobserved
locations never leak statistics — and invert predictions before metrics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler", "IdentityScaler"]


class StandardScaler:
    """Z-score normalisation fitted on a flat view of the given values."""

    def __init__(self) -> None:
        self.mean_: float | None = None
        self.std_: float | None = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=float)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            raise ValueError("cannot fit scaler on empty/non-finite data")
        self.mean_ = float(finite.mean())
        self.std_ = float(finite.std())
        if self.std_ == 0.0:
            self.std_ = 1.0
        return self

    def _check_fitted(self) -> None:
        if self.mean_ is None:
            raise RuntimeError("scaler used before fit()")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(values, dtype=float) - self.mean_) / self.std_

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(values, dtype=float) * self.std_ + self.mean_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)


class MinMaxScaler:
    """Scale to [0, 1] using the fitted min/max."""

    def __init__(self) -> None:
        self.min_: float | None = None
        self.max_: float | None = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        values = np.asarray(values, dtype=float)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            raise ValueError("cannot fit scaler on empty/non-finite data")
        self.min_ = float(finite.min())
        self.max_ = float(finite.max())
        if self.max_ == self.min_:
            self.max_ = self.min_ + 1.0
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler used before fit()")
        return (np.asarray(values, dtype=float) - self.min_) / (self.max_ - self.min_)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler used before fit()")
        return np.asarray(values, dtype=float) * (self.max_ - self.min_) + self.min_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)


class IdentityScaler:
    """No-op scaler (keeps model code uniform when scaling is disabled)."""

    def fit(self, values: np.ndarray) -> "IdentityScaler":
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.transform(values)
