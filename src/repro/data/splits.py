"""Space-based and time-based dataset splitting (paper §5.1.1, §5.2.4).

The paper splits each dataset's *locations* 4:1:5 into train / validation /
test sets, where each set is spatially contiguous: the sensors are divided
horizontally or vertically by geo-coordinate.  Four split variants are
averaged (horizontal and vertical, each with the two orientations).  The
ring split (§5.2.4, Fig. 11) puts the training region in the centre, the
validation ring around it, and tests on the outer ring.

Time is split 70% (train) / 30% (test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SpaceSplit",
    "space_split",
    "scattered_split",
    "four_standard_splits",
    "progressive_splits",
    "temporal_split",
]

_DEFAULT_FRACTIONS = (0.4, 0.1, 0.5)


@dataclass(frozen=True)
class SpaceSplit:
    """Location index sets for one spatial partitioning.

    ``train`` and ``validation`` are the observed locations (sensors with
    data); ``test`` are the unobserved locations the model must forecast.
    """

    train: np.ndarray
    validation: np.ndarray
    test: np.ndarray
    name: str = ""

    @property
    def observed(self) -> np.ndarray:
        """All locations with data (train + validation), sorted."""
        return np.sort(np.concatenate([self.train, self.validation]))

    @property
    def unobserved(self) -> np.ndarray:
        """Locations without any observations (the region of interest)."""
        return np.sort(self.test)

    def validate(self, num_locations: int) -> None:
        """Check the split is a partition of ``range(num_locations)``."""
        joined = np.concatenate([self.train, self.validation, self.test])
        if len(joined) != num_locations or len(np.unique(joined)) != num_locations:
            raise ValueError(f"split {self.name!r} is not a partition of {num_locations} locations")


def _partition(order: np.ndarray, fractions: tuple[float, float, float]) -> tuple[np.ndarray, ...]:
    n = len(order)
    n_train = int(round(fractions[0] * n))
    n_val = int(round(fractions[1] * n))
    n_train = max(1, min(n_train, n - 2))
    n_val = max(1, min(n_val, n - n_train - 1))
    return (
        np.sort(order[:n_train]),
        np.sort(order[n_train : n_train + n_val]),
        np.sort(order[n_train + n_val :]),
    )


def space_split(
    coords: np.ndarray,
    kind: str,
    fractions: tuple[float, float, float] = _DEFAULT_FRACTIONS,
) -> SpaceSplit:
    """Split locations spatially.

    Parameters
    ----------
    coords:
        ``(N, 2)`` coordinates.
    kind:
        One of ``"horizontal"`` (sweep south→north), ``"horizontal_flip"``
        (north→south), ``"vertical"`` (west→east), ``"vertical_flip"``
        (east→west) or ``"ring"`` (centre outward by distance from the
        centroid).
    fractions:
        (train, validation, test) location fractions; default 4:1:5.
    """
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError(f"coords must be (N, 2), got {coords.shape}")
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {fractions}")
    order = _sweep_order(coords, kind)
    train, validation, test = _partition(order, fractions)
    return SpaceSplit(train=train, validation=validation, test=test, name=kind)


def scattered_split(
    coords: np.ndarray,
    fractions: tuple[float, float, float] = _DEFAULT_FRACTIONS,
    rng: np.random.Generator | None = None,
) -> SpaceSplit:
    """Split with *scattered* unobserved locations (classic kriging, Fig. 1b).

    Unlike :func:`space_split`, the test locations are drawn uniformly at
    random, so every unobserved location tends to have observed neighbours.
    This is the setting IGNNK/INCREASE were designed for; the paper's
    problem (Fig. 1c) replaces it with one contiguous unobserved region.
    Used by the ``ext_missingness`` experiment to reproduce the paper's
    motivating claim that kriging models degrade under contiguity.
    """
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError(f"coords must be (N, 2), got {coords.shape}")
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {fractions}")
    rng = rng if rng is not None else np.random.default_rng(0)
    order = rng.permutation(len(coords))
    train, validation, test = _partition(order, fractions)
    return SpaceSplit(train=train, validation=validation, test=test, name="scattered")


def _sweep_order(coords: np.ndarray, kind: str) -> np.ndarray:
    """Location order along a sweep direction (shared with space_split)."""
    if kind == "horizontal":
        return np.argsort(coords[:, 1], kind="stable")
    if kind == "horizontal_flip":
        return np.argsort(-coords[:, 1], kind="stable")
    if kind == "vertical":
        return np.argsort(coords[:, 0], kind="stable")
    if kind == "vertical_flip":
        return np.argsort(-coords[:, 0], kind="stable")
    if kind == "ring":
        centre = coords.mean(axis=0)
        return np.argsort(np.linalg.norm(coords - centre, axis=1), kind="stable")
    raise ValueError(f"unknown split kind {kind!r}")


def progressive_splits(
    coords: np.ndarray,
    kind: str = "horizontal",
    base_fraction: float = 0.5,
    core_fraction: float = 0.25,
    stages: tuple[float, ...] = (0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0),
    validation_fraction: float = 0.2,
) -> tuple[list[SpaceSplit], np.ndarray]:
    """Splits simulating progressive sensor deployment (paper §1, case 1).

    The sweep direction divides the locations into three zones:

    * a **base** region (first ``base_fraction``) that always has sensors;
    * a **deployment corridor** (middle) whose sensors come online stage by
      stage, in sweep order — "deployed progressively from one region to
      another", the paper's Hong Kong scenario;
    * a permanent **core** (last ``core_fraction``) that never gets sensors.

    One :class:`SpaceSplit` is returned per stage fraction: at stage ``f``
    the base plus the first ``f`` of the corridor are observed (split
    ``1 − validation_fraction : validation_fraction`` into train and
    validation along the sweep), and everything else is unobserved.  The
    core indices are returned separately so the caller can score every
    stage on the *same* target set — errors stay comparable as deployment
    advances.

    Returns
    -------
    ``(splits, core)`` — the per-stage splits and the sorted core indices.
    """
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError(f"coords must be (N, 2), got {coords.shape}")
    if not 0.0 < base_fraction < 1.0 or not 0.0 < core_fraction < 1.0:
        raise ValueError("base_fraction and core_fraction must be in (0, 1)")
    if base_fraction + core_fraction >= 1.0:
        raise ValueError(
            f"base_fraction + core_fraction must leave a corridor, got "
            f"{base_fraction} + {core_fraction}"
        )
    if any(not 0.0 <= stage <= 1.0 for stage in stages):
        raise ValueError(f"stage fractions must be in [0, 1], got {stages}")
    order = _sweep_order(coords, kind)
    n = len(order)
    n_base = max(2, int(round(base_fraction * n)))
    n_core = max(1, int(round(core_fraction * n)))
    n_core = min(n_core, n - n_base - 1)
    corridor = order[n_base : n - n_core]
    core = np.sort(order[n - n_core :])

    splits = []
    for stage in stages:
        deployed = corridor[: int(round(stage * len(corridor)))]
        observed_order = np.concatenate([order[:n_base], deployed])
        n_val = max(1, int(round(validation_fraction * len(observed_order))))
        train = np.sort(observed_order[:-n_val])
        validation = np.sort(observed_order[-n_val:])
        test = np.sort(np.concatenate([corridor[len(deployed):], core]))
        splits.append(
            SpaceSplit(
                train=train,
                validation=validation,
                test=test,
                name=f"{kind}-deploy-{stage:.2f}",
            )
        )
    return splits, core


def four_standard_splits(
    coords: np.ndarray,
    fractions: tuple[float, float, float] = _DEFAULT_FRACTIONS,
) -> list[SpaceSplit]:
    """The four split variants the paper averages over (§5.1.1)."""
    kinds = ("horizontal", "horizontal_flip", "vertical", "vertical_flip")
    return [space_split(coords, kind, fractions) for kind in kinds]


def temporal_split(num_steps: int, train_fraction: float = 0.7) -> tuple[np.ndarray, np.ndarray]:
    """First ``train_fraction`` of time for training, the rest for testing."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    cut = int(round(num_steps * train_fraction))
    cut = max(1, min(cut, num_steps - 1))
    return np.arange(cut), np.arange(cut, num_steps)
