"""Synthetic point-of-interest generation (paper Table 1).

The paper collects POIs from OpenStreetMap within radius ``r_poi`` of each
sensor and counts them across 26 categories; the count vector plus a
"prosperity" scalar (building floors / park area) forms the regional part
of the selective-masking location embedding.  With no network access we
generate POIs from land-use-dependent Poisson intensities, which preserves
the property the module needs: locations in similar areas get similar
category profiles.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "POI_CATEGORIES",
    "NUM_POI_CATEGORIES",
    "LAND_USES",
    "poi_intensity",
    "sample_poi_counts",
    "sample_scale",
]

#: The 26 POI categories of paper Table 1 (representative subcategory names).
POI_CATEGORIES = (
    "education",          # 1 university, school, kindergarten, ...
    "office",             # 2 commercial, office, studio
    "retail",             # 3 retail, supermarket
    "lodging",            # 4 hotel, motel, hostel
    "culture",            # 5 arts centre, library, museum, zoo, ...
    "health",             # 6 clinic, hospital, pharmacy, ...
    "bridge",             # 7 bridges
    "cinema",             # 8 cinema
    "park",               # 9 fountain, garden, park, viewpoint, ...
    "nightlife",          # 10 casino, nightclub, dance
    "worship",            # 11 church, mosque, temple, ...
    "food",               # 12 cafe, restaurant, pub, fast food
    "parking",            # 13 parking, carport, ...
    "transit",            # 14 taxi, bus station, train station, ...
    "warehouse",          # 15 warehouse
    "industrial",         # 16 industrial
    "residential",        # 17 residential, apartments
    "construction",       # 18 construction
    "marketplace",        # 19 marketplace
    "camping",            # 20 caravan site, camp site, picnic
    "sports",             # 21 pitch, sports centre, stadium, ...
    "civic",              # 22 civic, government, public
    "automotive",         # 23 fuel, car wash, car repair, ...
    "finance",            # 24 atm, bank, bureau de change
    "waterfront",         # 25 boat rental, ferry terminal
    "agriculture",        # 26 barn, greenhouse, stable, ...
)

NUM_POI_CATEGORIES = len(POI_CATEGORIES)

#: Land-use archetypes used by the synthetic city.
LAND_USES = ("commercial", "residential", "industrial", "recreational", "rural")

# Poisson intensity per category (rows) per land use (columns), calibrated
# so that a commercial core looks like a CBD and a rural corridor looks like
# open highway.  Units: expected POIs inside a ~500 m radius circle.
_INTENSITY = {
    #                   comm  resi  indu  recr  rural
    "education":      ( 1.5,  2.5,  0.2,  0.3,  0.05),
    "office":         ( 9.0,  1.0,  1.5,  0.2,  0.02),
    "retail":         ( 6.0,  2.0,  0.5,  0.3,  0.05),
    "lodging":        ( 3.0,  0.5,  0.2,  1.0,  0.10),
    "culture":        ( 2.5,  0.6,  0.1,  1.5,  0.02),
    "health":         ( 2.0,  1.8,  0.3,  0.2,  0.05),
    "bridge":         ( 0.3,  0.2,  0.3,  0.3,  0.20),
    "cinema":         ( 0.8,  0.2,  0.0,  0.3,  0.00),
    "park":           ( 1.0,  2.0,  0.3,  6.0,  0.80),
    "nightlife":      ( 1.5,  0.2,  0.1,  0.3,  0.00),
    "worship":        ( 0.8,  1.2,  0.1,  0.2,  0.15),
    "food":           (10.0,  3.0,  1.0,  2.0,  0.10),
    "parking":        ( 6.0,  3.0,  2.0,  1.0,  0.30),
    "transit":        ( 4.0,  1.5,  0.8,  0.5,  0.20),
    "warehouse":      ( 0.3,  0.2,  5.0,  0.1,  0.30),
    "industrial":     ( 0.2,  0.1,  6.0,  0.0,  0.40),
    "residential":    ( 3.0,  9.0,  0.5,  1.0,  0.30),
    "construction":   ( 1.0,  0.8,  1.5,  0.2,  0.10),
    "marketplace":    ( 0.8,  0.4,  0.1,  0.2,  0.05),
    "camping":        ( 0.0,  0.1,  0.0,  1.5,  0.40),
    "sports":         ( 1.0,  2.0,  0.3,  4.0,  0.20),
    "civic":          ( 2.0,  0.8,  0.3,  0.3,  0.05),
    "automotive":     ( 1.5,  1.0,  2.5,  0.3,  0.50),
    "finance":        ( 3.5,  0.8,  0.2,  0.1,  0.02),
    "waterfront":     ( 0.3,  0.1,  0.2,  1.0,  0.05),
    "agriculture":    ( 0.0,  0.1,  0.3,  0.3,  2.00),
}

#: Expected building floors per land use (prosperity scale component).
_FLOORS = {"commercial": 25.0, "residential": 6.0, "industrial": 3.0, "recreational": 2.0, "rural": 1.0}


def poi_intensity(land_use_mixture: np.ndarray, radius: float = 500.0) -> np.ndarray:
    """Expected POI counts per category for a land-use mixture.

    Parameters
    ----------
    land_use_mixture:
        ``(N, 5)`` rows of convex weights over :data:`LAND_USES`.
    radius:
        The POI collection radius ``r_poi`` in metres; intensities scale
        with the circle area relative to the 500 m calibration radius.

    Returns
    -------
    ``(N, 26)`` expected counts.
    """
    mixture = np.asarray(land_use_mixture, dtype=float)
    if mixture.ndim != 2 or mixture.shape[1] != len(LAND_USES):
        raise ValueError(f"land_use_mixture must be (N, {len(LAND_USES)}), got {mixture.shape}")
    table = np.array([_INTENSITY[c] for c in POI_CATEGORIES])  # (26, 5)
    area_scale = (radius / 500.0) ** 2
    return mixture @ table.T * area_scale


def sample_poi_counts(
    land_use_mixture: np.ndarray,
    rng: np.random.Generator,
    radius: float = 500.0,
) -> np.ndarray:
    """Draw Poisson POI counts per location and category."""
    return rng.poisson(poi_intensity(land_use_mixture, radius=radius)).astype(float)


def sample_scale(land_use_mixture: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw the prosperity scalar (dominated by expected building floors)."""
    mixture = np.asarray(land_use_mixture, dtype=float)
    floors = np.array([_FLOORS[l] for l in LAND_USES])
    expected = mixture @ floors
    noise = rng.gamma(shape=4.0, scale=0.25, size=len(mixture))
    return expected * noise
