"""Synthetic stand-ins for the paper's datasets (no network access).

See DESIGN.md for the substitution rationale: the simulators reproduce the
statistical structure (diurnal cycles, spatial correlation along the road
graph, land-use-driven heterogeneity) that the forecasting models exploit.
"""

from .airquality import simulate_pm25
from .catalog import (
    DATASET_MAKERS,
    PAPER_DATASETS,
    make_airq,
    make_dataset,
    make_melbourne,
    make_pems07,
    make_pems08,
    make_pems_bay,
)
from .city import CityLayout, generate_highway_city, generate_urban_city, land_use_mixture
from .poi import LAND_USES, NUM_POI_CATEGORIES, POI_CATEGORIES, poi_intensity, sample_poi_counts, sample_scale
from .traffic import diurnal_demand, simulate_traffic_speeds

__all__ = [
    "make_pems_bay",
    "make_pems07",
    "make_pems08",
    "make_melbourne",
    "make_airq",
    "make_dataset",
    "DATASET_MAKERS",
    "PAPER_DATASETS",
    "CityLayout",
    "generate_highway_city",
    "generate_urban_city",
    "land_use_mixture",
    "POI_CATEGORIES",
    "NUM_POI_CATEGORIES",
    "LAND_USES",
    "poi_intensity",
    "sample_poi_counts",
    "sample_scale",
    "simulate_traffic_speeds",
    "diurnal_demand",
    "simulate_pm25",
]
