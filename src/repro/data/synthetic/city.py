"""Synthetic city / highway-corridor generation.

Produces the geometric substrate the paper obtains from OpenStreetMap and
CalTrans: a road network, sensor locations on that network, per-sensor road
attributes, and a land-use field that drives the POI generator.  Two modes:

* ``highway`` — a handful of long motorway corridors crossing a large
  region (PEMS-like sensor layouts);
* ``urban`` — a dense street grid with arterials (Melbourne-like layouts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...graph.roadnet import DEFAULT_MAXSPEED, HIGHWAY_LEVELS, RoadNetwork, RoadSegmentAttributes
from .poi import LAND_USES, sample_poi_counts, sample_scale

__all__ = ["CityLayout", "generate_highway_city", "generate_urban_city", "land_use_mixture"]


@dataclass
class CityLayout:
    """The generated geometric substrate.

    Attributes
    ----------
    sensor_coords:
        ``(N, 2)`` sensor positions in metres.
    road_network:
        The :class:`RoadNetwork` the sensors sit on.
    road_features:
        ``(N, 4)`` road attribute vectors (highway_level, maxspeed,
        is_oneway, lanes) of each sensor's segment.
    land_use:
        ``(N, 5)`` land-use mixture per sensor (columns follow
        :data:`~repro.data.synthetic.poi.LAND_USES`).
    poi_counts:
        ``(N, 26)`` sampled POI category counts.
    scale:
        ``(N,)`` prosperity scalar.
    centres:
        ``(K, 2)`` activity-centre positions (used by the simulators).
    """

    sensor_coords: np.ndarray
    road_network: RoadNetwork
    road_features: np.ndarray
    land_use: np.ndarray
    poi_counts: np.ndarray
    scale: np.ndarray
    centres: np.ndarray


def land_use_mixture(coords: np.ndarray, centres: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Soft land-use mixture from distances to typed activity centres.

    Each centre is assigned one land use (cycled through
    commercial/residential/industrial/recreational); weight decays with a
    Gaussian kernel of the distance, and a floor of "rural" weight keeps
    far-away locations rural.
    """
    coords = np.asarray(coords, dtype=float)
    centres = np.asarray(centres, dtype=float)
    num_uses = len(LAND_USES)
    mixture = np.zeros((len(coords), num_uses))
    if len(centres):
        spread = max(np.ptp(coords[:, 0]), np.ptp(coords[:, 1]), 1.0) / 4.0
        for k, centre in enumerate(centres):
            use = k % (num_uses - 1)  # cycle over non-rural uses
            dist = np.linalg.norm(coords - centre, axis=1)
            mixture[:, use] += np.exp(-((dist / spread) ** 2))
    mixture[:, -1] = 0.15  # rural floor
    mixture += rng.uniform(0.0, 0.05, size=mixture.shape)
    return mixture / mixture.sum(axis=1, keepdims=True)


def _corridor_points(
    rng: np.random.Generator, extent: float, num_points: int
) -> np.ndarray:
    """A gently-curved polyline crossing the square region ``[0, extent]^2``."""
    angle = rng.uniform(0.0, np.pi)
    direction = np.array([np.cos(angle), np.sin(angle)])
    normal = np.array([-direction[1], direction[0]])
    anchor = rng.uniform(0.25 * extent, 0.75 * extent, size=2)
    offsets = np.linspace(-0.75 * extent, 0.75 * extent, num_points)
    curvature = rng.uniform(-0.08, 0.08) * extent
    wiggle = curvature * np.sin(np.linspace(0.0, np.pi, num_points))
    pts = anchor + offsets[:, None] * direction + wiggle[:, None] * normal
    return np.clip(pts, 0.0, extent)


def generate_highway_city(
    num_sensors: int,
    rng: np.random.Generator,
    extent: float = 40_000.0,
    num_corridors: int | None = None,
    poi_radius: float = 500.0,
) -> CityLayout:
    """Generate motorway corridors with sensors (PEMS-like layout)."""
    if num_sensors < 2:
        raise ValueError("need at least 2 sensors")
    num_corridors = num_corridors if num_corridors is not None else max(3, num_sensors // 40)
    per_corridor = np.full(num_corridors, num_sensors // num_corridors)
    per_corridor[: num_sensors % num_corridors] += 1

    network = RoadNetwork()
    sensor_coords: list[np.ndarray] = []
    road_features: list[np.ndarray] = []
    node_id = 0
    corridor_first_nodes: list[int] = []
    for c, count in enumerate(per_corridor):
        pts = _corridor_points(rng, extent, int(count))
        # Corridors mix freeway classes (motorway / trunk) like real PEMS
        # deployments, but with PEMS-realistic speed-limit spreads: all
        # freeway-class roads sit in a narrow band (~60-70 mph), so
        # cross-corridor interpolation is not systematically biased.
        level_name = "motorway" if c % 3 != 2 else "trunk"
        level = HIGHWAY_LEVELS.index(level_name)
        lanes = int(rng.integers(3, 6)) if level_name == "motorway" else int(rng.integers(2, 4))
        attrs = RoadSegmentAttributes(
            highway_level=level,
            maxspeed=DEFAULT_MAXSPEED[level_name],
            is_oneway=False,
            lanes=lanes,
        )
        corridor_first_nodes.append(node_id)
        previous = None
        for p in pts:
            network.add_intersection(node_id, (p[0], p[1]))
            if previous is not None:
                network.add_segment(previous, node_id, attrs)
            sensor_coords.append(p + rng.normal(0.0, 30.0, size=2))
            road_features.append(attrs.as_vector())
            previous = node_id
            node_id += 1
    # Join corridors so the network is connected (motorway interchanges).
    for first in corridor_first_nodes[1:]:
        attrs = RoadSegmentAttributes(
            highway_level=HIGHWAY_LEVELS.index("primary"),
            maxspeed=DEFAULT_MAXSPEED["primary"],
            is_oneway=False,
            lanes=2,
        )
        # Connect this corridor's head to the nearest node of earlier corridors.
        head_pos = network.graph.nodes[first]["pos"]
        earlier = [n for n in network.graph.nodes if n < first]
        nearest = min(
            earlier,
            key=lambda n: np.linalg.norm(np.asarray(network.graph.nodes[n]["pos"]) - head_pos),
        )
        network.add_segment(first, nearest, attrs)

    coords = np.asarray(sensor_coords)
    num_centres = max(2, num_sensors // 100)
    centres = rng.uniform(0.2 * extent, 0.8 * extent, size=(num_centres, 2))
    mixture = land_use_mixture(coords, centres, rng)
    # Highway surroundings skew rural between activity centres.
    mixture[:, -1] += 0.3
    mixture /= mixture.sum(axis=1, keepdims=True)
    return CityLayout(
        sensor_coords=coords,
        road_network=network,
        road_features=np.asarray(road_features),
        land_use=mixture,
        poi_counts=sample_poi_counts(mixture, rng, radius=poi_radius),
        scale=sample_scale(mixture, rng),
        centres=centres,
    )


def generate_urban_city(
    num_sensors: int,
    rng: np.random.Generator,
    extent: float = 8_000.0,
    block: float = 400.0,
    poi_radius: float = 200.0,
) -> CityLayout:
    """Generate a street grid with arterials and sensors at intersections."""
    if num_sensors < 2:
        raise ValueError("need at least 2 sensors")
    cells = max(3, int(extent / block))
    network = RoadNetwork()
    node_ids = {}
    for ix in range(cells):
        for iy in range(cells):
            nid = ix * cells + iy
            node_ids[(ix, iy)] = nid
            network.add_intersection(nid, (ix * block, iy * block))
    arterial_every = 4

    def _segment_attrs(is_arterial: bool) -> RoadSegmentAttributes:
        if is_arterial:
            return RoadSegmentAttributes(
                highway_level=HIGHWAY_LEVELS.index("primary"),
                maxspeed=DEFAULT_MAXSPEED["primary"],
                is_oneway=False,
                lanes=3,
            )
        level_name = "secondary" if rng.random() < 0.4 else "residential"
        return RoadSegmentAttributes(
            highway_level=HIGHWAY_LEVELS.index(level_name),
            maxspeed=DEFAULT_MAXSPEED[level_name],
            is_oneway=bool(rng.random() < 0.25),
            lanes=int(rng.integers(1, 3)),
        )

    for ix in range(cells):
        for iy in range(cells):
            if ix + 1 < cells:
                network.add_segment(
                    node_ids[(ix, iy)],
                    node_ids[(ix + 1, iy)],
                    _segment_attrs(iy % arterial_every == 0),
                )
            if iy + 1 < cells:
                network.add_segment(
                    node_ids[(ix, iy)],
                    node_ids[(ix, iy + 1)],
                    _segment_attrs(ix % arterial_every == 0),
                )

    chosen = rng.choice(cells * cells, size=num_sensors, replace=num_sensors > cells * cells)
    coords = []
    road_features = []
    for nid in chosen:
        pos = np.asarray(network.graph.nodes[int(nid)]["pos"], dtype=float)
        coords.append(pos + rng.normal(0.0, block * 0.1, size=2))
        attrs = network.nearest_segment_attributes(tuple(pos))
        road_features.append(attrs.as_vector())
    coords = np.asarray(coords)
    num_centres = max(2, num_sensors // 50)
    centres = rng.uniform(0.2 * extent, 0.8 * extent, size=(num_centres, 2))
    mixture = land_use_mixture(coords, centres, rng)
    return CityLayout(
        sensor_coords=coords,
        road_network=network,
        road_features=np.asarray(road_features),
        land_use=mixture,
        poi_counts=sample_poi_counts(mixture, rng, radius=poi_radius),
        scale=sample_scale(mixture, rng),
        centres=centres,
    )
