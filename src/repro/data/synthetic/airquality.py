"""PM2.5 simulation for the AirQ (Beijing + Tianjin) stand-in.

The real AirQ dataset (Zheng et al., KDD 2015) records hourly PM2.5 at 63
stations across two adjacent cities for a year.  The simulator reproduces
the properties the models rely on: strong regional correlation (smog
episodes cover whole cities), seasonal baseline (winter ≫ summer), a mild
daily cycle, land-use-driven local offsets (industrial higher), spatial
smoothness within city clusters, and heavy-tailed pollution episodes.
"""

from __future__ import annotations

import numpy as np

from ...graph.adjacency import gaussian_kernel_adjacency, row_normalise
from ...graph.distances import euclidean_distance_matrix

__all__ = ["simulate_pm25"]


def simulate_pm25(
    coords: np.ndarray,
    land_use: np.ndarray,
    steps_per_day: int,
    num_days: int,
    rng: np.random.Generator,
    base_level: float = 65.0,
) -> np.ndarray:
    """Simulate ``(T, N)`` hourly PM2.5 concentrations (µg/m³).

    Parameters
    ----------
    coords:
        ``(N, 2)`` station positions (metres; clusters are fine).
    land_use:
        ``(N, 5)`` land-use mixture; the industrial column raises the local
        baseline, the recreational column lowers it.
    steps_per_day / num_days:
        Temporal resolution (24 for hourly) and record length.
    rng:
        Random generator.
    base_level:
        Annual-average concentration scale.
    """
    coords = np.asarray(coords, dtype=float)
    land_use = np.asarray(land_use, dtype=float)
    n = len(coords)
    total_steps = steps_per_day * num_days

    # Seasonal factor: winter peaks about 2.2x the summer trough.
    day_index = np.repeat(np.arange(num_days), steps_per_day)
    seasonal = 1.0 + 0.6 * np.cos(2 * np.pi * day_index / 365.0)

    # Daily cycle: morning and evening combustion bumps.
    hours = (np.arange(total_steps) % steps_per_day) / steps_per_day * 24.0
    daily = 1.0 + 0.15 * np.exp(-((hours - 8.0) ** 2) / 8.0) + 0.2 * np.exp(
        -((hours - 21.0) ** 2) / 10.0
    )

    # Regional AR(1) episodes shared by neighbouring stations.
    distances = euclidean_distance_matrix(coords)
    adjacency = gaussian_kernel_adjacency(distances, threshold=0.05, self_loops=True)
    mixing = row_normalise(adjacency)
    regional = np.zeros((total_steps, n))
    state = rng.normal(0.0, 0.3, size=n)
    for t in range(total_steps):
        shared = rng.normal(0.0, 0.18)  # region-wide weather driver
        local = rng.normal(0.0, 0.10, size=n)
        state = 0.97 * state + shared + 0.5 * (mixing @ local)
        regional[t] = mixing @ state

    industrial = land_use[:, 2]
    recreational = land_use[:, 3]
    local_factor = 1.0 + 0.5 * industrial - 0.25 * recreational

    concentration = (
        base_level
        * seasonal[:, None]
        * daily[:, None]
        * local_factor[None, :]
        * np.exp(0.45 * regional)
    )

    # Severe episodes: multiply a multi-day stretch region-wide.
    num_episodes = max(1, rng.poisson(num_days / 45.0))
    for _ in range(num_episodes):
        start = int(rng.integers(0, max(1, total_steps - steps_per_day)))
        duration = int(rng.integers(steps_per_day, steps_per_day * 4))
        stop = min(total_steps, start + duration)
        concentration[start:stop] *= rng.uniform(1.8, 3.2)

    concentration += rng.normal(0.0, 4.0, size=concentration.shape)
    return np.clip(concentration, 2.0, 900.0)
