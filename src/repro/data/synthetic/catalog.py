"""Per-dataset presets mirroring the paper's Table 2.

Each ``make_*`` function generates a synthetic stand-in for one of the five
evaluation datasets, matching its sensor count, sampling interval, record
length, and qualitative layout (highway corridors vs. urban grid vs. two
city clusters).  ``num_sensors`` / ``num_days`` can be overridden to build
the reduced-scale variants used by tests and benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..dataset import LocationFeatures, SpatioTemporalDataset
from .airquality import simulate_pm25
from .city import CityLayout, generate_highway_city, generate_urban_city, land_use_mixture
from .poi import sample_poi_counts, sample_scale
from .traffic import simulate_traffic_speeds

__all__ = [
    "make_pems_bay",
    "make_pems07",
    "make_pems08",
    "make_melbourne",
    "make_airq",
    "make_dataset",
    "DATASET_MAKERS",
    "PAPER_DATASETS",
]

#: Paper Table 2 defaults: (sensors, interval minutes, record days).
PAPER_DATASETS = {
    "pems-bay": (325, 5, 181),
    "pems-07": (400, 5, 122),
    "pems-08": (400, 5, 122),
    "melbourne": (182, 15, 92),
    "airq": (63, 60, 365),
}


def _traffic_dataset(
    name: str,
    layout: CityLayout,
    interval_minutes: float,
    num_days: int,
    rng: np.random.Generator,
    spatial_coupling: float = 1.0,
) -> SpatioTemporalDataset:
    steps_per_day = int(round(24 * 60 / interval_minutes))
    values = simulate_traffic_speeds(
        coords=layout.sensor_coords,
        road_features=layout.road_features,
        land_use=layout.land_use,
        steps_per_day=steps_per_day,
        num_days=num_days,
        rng=rng,
        spatial_coupling=spatial_coupling,
    )
    return SpatioTemporalDataset(
        name=name,
        values=values,
        coords=layout.sensor_coords,
        steps_per_day=steps_per_day,
        features=LocationFeatures(
            poi_counts=layout.poi_counts,
            scale=layout.scale,
            road=layout.road_features,
        ),
        road_network=layout.road_network,
        interval_minutes=interval_minutes,
        metadata={"kind": "traffic", "land_use": layout.land_use},
    )


def make_pems_bay(
    num_sensors: int | None = None,
    num_days: int | None = None,
    seed: int = 0,
) -> SpatioTemporalDataset:
    """Bay-Area-style highway sensor network (5-minute speeds)."""
    sensors, interval, days = PAPER_DATASETS["pems-bay"]
    rng = np.random.default_rng(seed)
    layout = generate_highway_city(num_sensors or sensors, rng, extent=45_000.0)
    return _traffic_dataset("pems-bay-synth", layout, interval, num_days or days, rng)


def make_pems07(
    num_sensors: int | None = None,
    num_days: int | None = None,
    seed: int = 1,
) -> SpatioTemporalDataset:
    """Los-Angeles-style highway network (5-minute speeds)."""
    sensors, interval, days = PAPER_DATASETS["pems-07"]
    rng = np.random.default_rng(seed)
    layout = generate_highway_city(num_sensors or sensors, rng, extent=60_000.0)
    return _traffic_dataset("pems-07-synth", layout, interval, num_days or days, rng)


def make_pems08(
    num_sensors: int | None = None,
    num_days: int | None = None,
    seed: int = 2,
) -> SpatioTemporalDataset:
    """San-Bernardino-style highway network (5-minute speeds)."""
    sensors, interval, days = PAPER_DATASETS["pems-08"]
    rng = np.random.default_rng(seed)
    layout = generate_highway_city(num_sensors or sensors, rng, extent=50_000.0)
    return _traffic_dataset("pems-08-synth", layout, interval, num_days or days, rng)


def make_melbourne(
    num_sensors: int | None = None,
    num_days: int | None = None,
    seed: int = 3,
) -> SpatioTemporalDataset:
    """Melbourne-City-style urban grid (15-minute speeds)."""
    sensors, interval, days = PAPER_DATASETS["melbourne"]
    rng = np.random.default_rng(seed)
    layout = generate_urban_city(num_sensors or sensors, rng, extent=9_000.0)
    # Urban links decorrelate quickly (signal timing); see simulator docs.
    return _traffic_dataset(
        "melbourne-synth", layout, interval, num_days or days, rng,
        spatial_coupling=0.45,
    )


def make_airq(
    num_sensors: int | None = None,
    num_days: int | None = None,
    seed: int = 4,
) -> SpatioTemporalDataset:
    """Beijing+Tianjin-style PM2.5 station network (hourly)."""
    sensors, interval, days = PAPER_DATASETS["airq"]
    num_sensors = num_sensors or sensors
    num_days = num_days or days
    rng = np.random.default_rng(seed)

    # Two adjacent city clusters ~100 km apart, each an urban blob.
    split = max(1, int(round(num_sensors * 0.6)))
    cluster_centres = np.array([[30_000.0, 30_000.0], [130_000.0, 15_000.0]])
    counts = (split, num_sensors - split)
    coords_parts = []
    for centre, count in zip(cluster_centres, counts):
        if count <= 0:
            continue
        coords_parts.append(rng.normal(centre, 9_000.0, size=(count, 2)))
    coords = np.concatenate(coords_parts, axis=0)

    activity = np.concatenate(
        [rng.normal(c, 6_000.0, size=(3, 2)) for c in cluster_centres], axis=0
    )
    mixture = land_use_mixture(coords, activity, rng)
    steps_per_day = int(round(24 * 60 / interval))
    values = simulate_pm25(coords, mixture, steps_per_day, num_days, rng)

    # Stations sit on urban roads; synthesise modest road attributes.
    road = np.column_stack(
        [
            rng.integers(2, 5, size=num_sensors).astype(float),  # highway level
            rng.choice([40.0, 60.0, 70.0], size=num_sensors),  # maxspeed
            (rng.random(num_sensors) < 0.2).astype(float),  # oneway
            rng.integers(1, 4, size=num_sensors).astype(float),  # lanes
        ]
    )
    return SpatioTemporalDataset(
        name="airq-synth",
        values=values,
        coords=coords,
        steps_per_day=steps_per_day,
        features=LocationFeatures(
            poi_counts=sample_poi_counts(mixture, rng, radius=500.0),
            scale=sample_scale(mixture, rng),
            road=road,
        ),
        road_network=None,
        interval_minutes=float(interval),
        metadata={"kind": "air_quality", "land_use": mixture},
    )


DATASET_MAKERS = {
    "pems-bay": make_pems_bay,
    "pems-07": make_pems07,
    "pems-08": make_pems08,
    "melbourne": make_melbourne,
    "airq": make_airq,
}


def make_dataset(
    name: str,
    num_sensors: int | None = None,
    num_days: int | None = None,
    seed: int | None = None,
) -> SpatioTemporalDataset:
    """Build a preset by name, optionally overriding size parameters."""
    if name not in DATASET_MAKERS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASET_MAKERS)}")
    maker = DATASET_MAKERS[name]
    kwargs = {"num_sensors": num_sensors, "num_days": num_days}
    if seed is not None:
        kwargs["seed"] = seed
    return maker(**kwargs)
