"""Traffic-speed simulation on a sensor graph.

Stands in for the PEMS / AIMES recordings (see DESIGN.md substitution
table).  The simulator produces the statistical structure the forecasting
models exploit:

* diurnal demand with AM/PM weekday peaks and flatter weekends;
* land-use modulation (commercial areas peak in the evening, residential
  in the morning);
* spatially-correlated congestion that diffuses along the sensor graph
  (an AR(1)-in-time, graph-diffused-in-space latent field);
* occasional localised incidents that propagate to neighbours;
* free-flow speeds set by each sensor's road class.
"""

from __future__ import annotations

import numpy as np

from ...graph.adjacency import gaussian_kernel_adjacency, row_normalise
from ...graph.distances import euclidean_distance_matrix

__all__ = ["diurnal_demand", "simulate_traffic_speeds"]


def diurnal_demand(
    steps_per_day: int,
    num_days: int,
    am_weight: np.ndarray,
    pm_weight: np.ndarray,
    am_hour: np.ndarray | None = None,
    pm_hour: np.ndarray | None = None,
) -> np.ndarray:
    """Per-location demand curves over the full horizon.

    Parameters
    ----------
    steps_per_day:
        Observation intervals per day (``T_d``).
    num_days:
        Number of days to simulate.
    am_weight / pm_weight:
        ``(N,)`` morning / evening peak strengths per location.
    am_hour / pm_hour:
        Optional ``(N,)`` per-location peak times (hours).  Land-use
        dependent peak times make locations in *similar* areas resemble
        each other more than merely *nearby* ones — the structure STSM's
        selective masking is designed to exploit.

    Returns
    -------
    ``(num_days * steps_per_day, N)`` demand in [0, ~1.2].
    """
    am_weight = np.asarray(am_weight, dtype=float)
    pm_weight = np.asarray(pm_weight, dtype=float)
    n = len(am_weight)
    am_hour = np.full(n, 8.0) if am_hour is None else np.asarray(am_hour, dtype=float)
    pm_hour = np.full(n, 17.5) if pm_hour is None else np.asarray(pm_hour, dtype=float)
    hours = (np.arange(steps_per_day) / steps_per_day) * 24.0
    am_peak = np.exp(-((hours[:, None] - am_hour[None, :]) ** 2) / (2 * 1.3 ** 2))
    pm_peak = np.exp(-((hours[:, None] - pm_hour[None, :]) ** 2) / (2 * 1.6 ** 2))
    midday = 0.35 * np.exp(-((hours - 13.0) ** 2) / (2 * 3.0 ** 2))
    night = 0.08
    rows = []
    for day in range(num_days):
        weekday = day % 7 < 5
        if weekday:
            curve = (
                night
                + midday[:, None]
                + am_peak * am_weight[None, :]
                + pm_peak * pm_weight[None, :]
            )
        else:
            weekend = 0.5 * np.exp(-((hours - 14.0) ** 2) / (2 * 4.0 ** 2))
            curve = night + weekend[:, None] * np.ones(n)[None, :]
        rows.append(curve)
    return np.concatenate(rows, axis=0)


def simulate_traffic_speeds(
    coords: np.ndarray,
    road_features: np.ndarray,
    land_use: np.ndarray,
    steps_per_day: int,
    num_days: int,
    rng: np.random.Generator,
    noise_std: float = 1.5,
    incident_rate: float = 0.02,
    spatial_coupling: float = 1.0,
) -> np.ndarray:
    """Simulate ``(T, N)`` traffic speeds.

    Parameters
    ----------
    coords:
        ``(N, 2)`` sensor positions (metres).
    road_features:
        ``(N, 4)`` road vectors; column 1 is the speed limit, which sets the
        free-flow speed.
    land_use:
        ``(N, 5)`` land-use mixture; commercial weight boosts the PM peak,
        residential the AM peak.
    steps_per_day / num_days:
        Temporal resolution and record length.
    rng:
        Random generator (simulations are fully reproducible).
    noise_std:
        Standard deviation of the per-reading sensor noise (km/h).
    incident_rate:
        Expected incidents per sensor per day.
    spatial_coupling:
        How strongly congestion diffuses to graph neighbours, in [0, 1].
        Freeway corridors are strongly coupled (1.0: a queue spills along
        the carriageway); urban links much less so (signal timing and turn
        ratios decorrelate adjacent streets), so the Melbourne preset uses
        a reduced value.
    """
    coords = np.asarray(coords, dtype=float)
    road_features = np.asarray(road_features, dtype=float)
    land_use = np.asarray(land_use, dtype=float)
    n = len(coords)
    total_steps = steps_per_day * num_days

    free_flow = road_features[:, 1] * rng.uniform(0.92, 1.02, size=n)
    commercial = land_use[:, 0]
    residential = land_use[:, 1]
    industrial = land_use[:, 2]
    # Land use drives both peak strength and peak timing: residential areas
    # peak early (outbound commute), commercial areas peak late, industrial
    # areas shift-change around 6am/3pm.  Locations in similar areas thus
    # share temporal signatures even when far apart — the resemblance
    # structure the paper's selective masking exploits.
    am_weight = 0.25 + 1.5 * residential + 0.8 * industrial
    pm_weight = 0.25 + 1.5 * commercial + 0.5 * industrial
    # Road class shifts timing too: minor roads see the commute wave
    # later than arterials (signal progression / route hierarchy).
    road_level = road_features[:, 0]
    level_shift = 0.35 * (road_level - road_level.mean())
    am_hour = (
        8.0 - 1.2 * residential - 2.0 * industrial + 1.0 * commercial
        + level_shift + rng.normal(0.0, 0.25, n)
    )
    pm_hour = (
        17.0 + 1.2 * commercial - 2.0 * industrial
        + level_shift + rng.normal(0.0, 0.25, n)
    )
    demand = diurnal_demand(steps_per_day, num_days, am_weight, pm_weight, am_hour, pm_hour)

    # Spatial mixing operator: congestion diffuses to graph neighbours,
    # blended with identity per the coupling strength.
    if not 0.0 <= spatial_coupling <= 1.0:
        raise ValueError(f"spatial_coupling must be in [0, 1], got {spatial_coupling}")
    distances = euclidean_distance_matrix(coords)
    adjacency = gaussian_kernel_adjacency(distances, threshold=0.1, self_loops=True)
    mixing = spatial_coupling * row_normalise(adjacency) + (1.0 - spatial_coupling) * np.eye(n)

    rho = 0.92
    field = np.zeros((total_steps, n))
    state = rng.normal(0.0, 0.3, size=n)
    for t in range(total_steps):
        innovation = rng.normal(0.0, 0.25, size=n)
        state = rho * state + (1.0 - rho) * (mixing @ innovation) * np.sqrt(n)
        field[t] = mixing @ state

    capacity = 0.45 + 0.45 * commercial + 0.20 * residential + 0.15 * industrial
    congestion = np.clip(demand * capacity[None, :] * (1.0 + 0.8 * field), 0.0, 0.95)

    speeds = free_flow[None, :] * (1.0 - congestion)

    # Incidents: short, sharp, localised speed drops that bleed to neighbours.
    expected_incidents = incident_rate * n * num_days
    num_incidents = rng.poisson(expected_incidents)
    for _ in range(num_incidents):
        sensor = int(rng.integers(0, n))
        start = int(rng.integers(0, max(1, total_steps - 1)))
        duration = int(rng.integers(steps_per_day // 24 + 1, max(2, steps_per_day // 6)))
        stop = min(total_steps, start + duration)
        severity = rng.uniform(0.4, 0.8)
        speeds[start:stop, sensor] *= 1.0 - severity
        neighbours = np.flatnonzero(adjacency[sensor])
        speeds[start:stop, neighbours] *= 1.0 - 0.4 * severity

    speeds = speeds + rng.normal(0.0, noise_std, size=speeds.shape)
    return np.clip(speeds, 2.0, free_flow[None, :] * 1.05)
