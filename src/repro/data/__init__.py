"""Dataset containers, splits, windowing, scaling, and synthetic presets."""

from .dataset import LocationFeatures, SpatioTemporalDataset
from .io import load_dataset, save_dataset
from .missing import (
    apply_missing,
    block_missing_mask,
    impute_forward_fill,
    impute_linear,
    missing_rate,
    random_missing_mask,
)
from .scalers import IdentityScaler, MinMaxScaler, StandardScaler
from .splits import (
    SpaceSplit,
    four_standard_splits,
    progressive_splits,
    scattered_split,
    space_split,
    temporal_split,
)
from .windows import WindowSpec, iterate_batches, slice_window, window_starts
from . import synthetic

__all__ = [
    "SpatioTemporalDataset",
    "LocationFeatures",
    "save_dataset",
    "load_dataset",
    "random_missing_mask",
    "block_missing_mask",
    "apply_missing",
    "impute_forward_fill",
    "impute_linear",
    "missing_rate",
    "StandardScaler",
    "MinMaxScaler",
    "IdentityScaler",
    "SpaceSplit",
    "space_split",
    "scattered_split",
    "four_standard_splits",
    "progressive_splits",
    "temporal_split",
    "WindowSpec",
    "window_starts",
    "slice_window",
    "iterate_batches",
    "synthetic",
]
