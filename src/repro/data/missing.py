"""Missing-at-times utilities (the paper's Fig. 1(a) problem setting).

The paper taxonomises incomplete spatio-temporal data into three settings:
(a) data missing at *times*, (b) data missing at scattered *locations*,
(c) a contiguous unobserved region (its focus).  The repository covers (b)
via :func:`~repro.data.splits.scattered_split` and (c) via the standard
splits; this module covers (a): masks that knock out observations in time
(random dropout or contiguous outages per sensor) and simple imputers to
repair them, so users can combine temporal missingness with the
unobserved-region task.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_missing_mask",
    "block_missing_mask",
    "apply_missing",
    "impute_forward_fill",
    "impute_linear",
    "missing_rate",
]


def random_missing_mask(
    shape: tuple[int, int],
    rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Bernoulli missing mask: True marks a missing (time, sensor) cell."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    return rng.random(shape) < rate


def block_missing_mask(
    shape: tuple[int, int],
    rate: float,
    rng: np.random.Generator,
    mean_block: int = 12,
) -> np.ndarray:
    """Contiguous-outage mask: sensors fail for stretches of time.

    Models transmission faults / sensor downtime: per sensor, outage
    blocks with geometric lengths (mean ``mean_block``) are placed until
    the target missing rate is reached.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    if mean_block <= 0:
        raise ValueError("mean_block must be positive")
    steps, sensors = shape
    mask = np.zeros(shape, dtype=bool)
    target_per_sensor = int(round(rate * steps))
    for sensor in range(sensors):
        missing = 0
        guard = 0
        while missing < target_per_sensor and guard < 100:
            guard += 1
            start = int(rng.integers(0, steps))
            length = max(1, int(rng.geometric(1.0 / mean_block)))
            stop = min(steps, start + length)
            before = mask[start:stop, sensor].sum()
            mask[start:stop, sensor] = True
            missing += (stop - start) - before
    return mask


def apply_missing(values: np.ndarray, mask: np.ndarray, fill: float = np.nan) -> np.ndarray:
    """Return a copy of ``values`` with masked cells replaced by ``fill``."""
    values = np.asarray(values, dtype=float)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != values.shape:
        raise ValueError(f"mask shape {mask.shape} does not match values {values.shape}")
    out = values.copy()
    out[mask] = fill
    return out


def impute_forward_fill(values: np.ndarray) -> np.ndarray:
    """Last-observation-carried-forward along time (NaNs filled).

    Leading NaNs fall back to the first observed value of that sensor; a
    fully-missing sensor column falls back to the global mean.
    """
    values = np.asarray(values, dtype=float)
    out = values.copy()
    steps, sensors = out.shape
    global_mean = np.nanmean(out) if np.isfinite(np.nanmean(out)) else 0.0
    for sensor in range(sensors):
        column = out[:, sensor]
        finite = np.flatnonzero(np.isfinite(column))
        if len(finite) == 0:
            out[:, sensor] = global_mean
            continue
        # Carry forward.
        last = column[finite[0]]
        for t in range(steps):
            if np.isfinite(column[t]):
                last = column[t]
            else:
                column[t] = last
        # Leading gap uses the first observation.
        column[: finite[0]] = out[finite[0], sensor]
    return out


def impute_linear(values: np.ndarray) -> np.ndarray:
    """Linear interpolation along time per sensor (edges extended flat)."""
    values = np.asarray(values, dtype=float)
    out = values.copy()
    steps, sensors = out.shape
    index = np.arange(steps)
    global_mean = np.nanmean(out) if np.isfinite(np.nanmean(out)) else 0.0
    for sensor in range(sensors):
        column = out[:, sensor]
        finite = np.isfinite(column)
        if not finite.any():
            out[:, sensor] = global_mean
            continue
        out[:, sensor] = np.interp(index, index[finite], column[finite])
    return out


def missing_rate(values: np.ndarray) -> float:
    """Fraction of NaN cells."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    return float(np.isnan(values).mean())
