"""Sliding-window sampling for sequence-to-sequence forecasting.

A window pairs ``T`` input steps with the following ``T'`` target steps
(paper Eq. 1).  The samplers yield start indices so models can slice both
values and time-of-day features consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["WindowSpec", "window_starts", "iterate_batches", "slice_window"]


@dataclass(frozen=True)
class WindowSpec:
    """Input/target window lengths (``T`` and ``T'`` of Eq. 1)."""

    input_length: int
    horizon: int

    def __post_init__(self) -> None:
        if self.input_length <= 0 or self.horizon <= 0:
            raise ValueError(f"window lengths must be positive, got {self}")

    @property
    def total(self) -> int:
        return self.input_length + self.horizon


def window_starts(num_steps: int, spec: WindowSpec, stride: int = 1) -> np.ndarray:
    """All valid window start indices within ``num_steps`` observations."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    last = num_steps - spec.total
    if last < 0:
        return np.array([], dtype=int)
    return np.arange(0, last + 1, stride)


def slice_window(values: np.ndarray, start: int, spec: WindowSpec) -> tuple[np.ndarray, np.ndarray]:
    """Slice ``(input, target)`` windows from a ``(T, ...)`` value array."""
    mid = start + spec.input_length
    end = mid + spec.horizon
    if end > len(values):
        raise IndexError(f"window [{start}, {end}) exceeds {len(values)} steps")
    return values[start:mid], values[mid:end]


def iterate_batches(
    starts: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield batches of window starts, shuffled when ``rng`` is given.

    ``drop_last`` discards a trailing partial batch (useful for contrastive
    training where a batch must contain enough negatives).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    starts = np.asarray(starts, dtype=int)
    order = rng.permutation(len(starts)) if rng is not None else np.arange(len(starts))
    for begin in range(0, len(starts), batch_size):
        batch = starts[order[begin : begin + batch_size]]
        if drop_last and len(batch) < batch_size:
            return
        if len(batch):
            yield batch
