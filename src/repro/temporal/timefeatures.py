"""Time-of-day features (paper §3.4.1, temporal attention).

Each observation interval in a day gets an interval id in ``[0, T_d - 1]``;
an input window of length T carries the ids of its T intervals, which the
model embeds and fuses multiplicatively with the observations (Eq. 4).
"""

from __future__ import annotations

import numpy as np

__all__ = ["interval_ids", "time_of_day_window", "normalised_time_encoding"]


def interval_ids(num_steps: int, steps_per_day: int, start: int = 0) -> np.ndarray:
    """Interval ids for ``num_steps`` consecutive observations.

    ``start`` is the id of the first step (wraps modulo ``steps_per_day``).
    """
    if steps_per_day <= 0:
        raise ValueError("steps_per_day must be positive")
    return (start + np.arange(num_steps)) % steps_per_day


def time_of_day_window(window_start: int, length: int, steps_per_day: int) -> np.ndarray:
    """The TE vector for an input window starting at global step ``window_start``."""
    return interval_ids(length, steps_per_day, start=window_start)


def normalised_time_encoding(ids: np.ndarray, steps_per_day: int) -> np.ndarray:
    """Scale interval ids to [0, 1] for use as continuous model input."""
    if steps_per_day <= 1:
        return np.zeros_like(np.asarray(ids, dtype=float))
    return np.asarray(ids, dtype=float) / float(steps_per_day - 1)
