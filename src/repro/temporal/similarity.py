"""Temporal-similarity adjacency construction (paper §3.4.1).

STSM builds ``A_dtw`` from DTW distances with two top-pair budgets:

* ``q_kk`` — for every observed location, keep edges to its ``q_kk`` most
  temporally similar *observed* locations (bidirectional);
* ``q_ku`` — for every unobserved/masked location, keep edges *from* its
  ``q_ku`` most similar observed locations (one-way: observed → unobserved,
  so pseudo-observation noise cannot pollute observed embeddings).

During training the masked locations play the unobserved role and the
matrix is recomputed every epoch because the mask changes (``A_dtw^train``);
at test time the true unobserved locations are used (``A_dtw``).
"""

from __future__ import annotations

import numpy as np

from .dtw import daily_profile, downsample_profile, dtw_distance_matrix

__all__ = ["temporal_adjacency", "build_dtw_adjacency"]


def temporal_adjacency(
    observed_distances: np.ndarray,
    cross_distances: np.ndarray | None,
    observed_index: np.ndarray,
    target_index: np.ndarray | None,
    num_nodes: int,
    q_kk: int = 1,
    q_ku: int = 1,
) -> np.ndarray:
    """Assemble the (num_nodes, num_nodes) DTW adjacency from distances.

    Parameters
    ----------
    observed_distances:
        ``(N_o, N_o)`` DTW distances among observed locations.
    cross_distances:
        ``(N_o, N_t)`` DTW distances from observed to target (masked or
        unobserved) locations, or ``None`` when there are no targets.
    observed_index / target_index:
        Global node ids of the observed and target locations.
    num_nodes:
        Total graph size N.
    q_kk / q_ku:
        Top-pair budgets (paper default 1 and 1).

    Returns
    -------
    Binary ``(num_nodes, num_nodes)`` adjacency under the ``A @ H`` GCN
    convention of :mod:`repro.core.gcn`: row ``i`` aggregates from the
    columns ``j`` with ``A[i, j] = 1``.  Observed pairs are symmetric;
    cross pairs are one-way (``A[target, observed] = 1`` only), so masked /
    unobserved locations receive messages from observed locations but never
    send their pseudo-observation noise back (paper §3.4.1).
    """
    observed_index = np.asarray(observed_index, dtype=int)
    n_obs = len(observed_index)
    if observed_distances.shape != (n_obs, n_obs):
        raise ValueError(
            f"observed_distances shape {observed_distances.shape} does not match "
            f"{n_obs} observed locations"
        )
    adjacency = np.zeros((num_nodes, num_nodes))
    if n_obs > 1 and q_kk > 0:
        budget = min(q_kk, n_obs - 1)
        masked = observed_distances + np.diag(np.full(n_obs, np.inf))
        nearest = np.argsort(masked, axis=1)[:, :budget]  # (n_obs, budget)
        rows = np.repeat(observed_index, budget)
        cols = observed_index[nearest.ravel()]
        adjacency[rows, cols] = 1.0
        adjacency[cols, rows] = 1.0
    if cross_distances is not None and target_index is not None and len(target_index) and q_ku > 0:
        target_index = np.asarray(target_index, dtype=int)
        if cross_distances.shape != (n_obs, len(target_index)):
            raise ValueError(
                f"cross_distances shape {cross_distances.shape} does not match "
                f"({n_obs}, {len(target_index)})"
            )
        budget = min(q_ku, n_obs)
        nearest = np.argsort(cross_distances, axis=0)[:budget, :]  # (budget, n_t)
        # One-way edges: target rows aggregate from their top observed
        # columns; the reverse entries stay 0 so observed embeddings are
        # never polluted by pseudo-observations.
        rows = np.broadcast_to(target_index, nearest.shape).ravel()
        cols = observed_index[nearest.ravel()]
        adjacency[rows, cols] = 1.0
    return adjacency


def build_dtw_adjacency(
    values: np.ndarray,
    observed_index: np.ndarray,
    target_index: np.ndarray | None,
    steps_per_day: int,
    num_nodes: int,
    q_kk: int = 1,
    q_ku: int = 1,
    band: int | None = None,
    resolution: int | None = 24,
    distance_fn=None,
) -> np.ndarray:
    """End-to-end DTW adjacency from an observation matrix.

    ``values`` is ``(T, num_nodes)`` where target columns hold
    pseudo-observations (paper: "pseudo-observations can be regarded as real
    observations with noises").  Series are reduced to mean daily profiles
    before the quadratic DTW step, and optionally downsampled to
    ``resolution`` points to bound the pairwise cost on 5-minute datasets.

    ``distance_fn`` swaps the pairwise DTW implementation; it must accept
    ``(series, others=None, band=None)`` like :func:`dtw_distance_matrix`.
    The training engine passes a
    :meth:`repro.engine.PairwiseDTWCache.distance_matrix` bound method here
    so per-epoch adjacency rebuilds skip the pairs whose profiles did not
    change under the fresh mask.
    """
    if distance_fn is None:
        distance_fn = dtw_distance_matrix
    observed_index = np.asarray(observed_index, dtype=int)
    profiles = daily_profile(values, steps_per_day)  # (num_nodes, T_d)
    if resolution is not None:
        profiles = downsample_profile(profiles, resolution)
    obs_profiles = profiles[observed_index]
    observed_distances = distance_fn(obs_profiles, band=band)
    cross = None
    if target_index is not None and len(target_index):
        target_profiles = profiles[np.asarray(target_index, dtype=int)]
        cross = distance_fn(obs_profiles, target_profiles, band=band)
    return temporal_adjacency(
        observed_distances,
        cross,
        observed_index,
        target_index,
        num_nodes,
        q_kk=q_kk,
        q_ku=q_ku,
    )
