"""Temporal utilities: DTW, temporal-similarity adjacency, time features."""

from .dtw import daily_profile, downsample_profile, dtw_distance, dtw_distance_matrix
from .similarity import build_dtw_adjacency, temporal_adjacency
from .timefeatures import interval_ids, normalised_time_encoding, time_of_day_window

__all__ = [
    "dtw_distance",
    "dtw_distance_matrix",
    "daily_profile",
    "downsample_profile",
    "temporal_adjacency",
    "build_dtw_adjacency",
    "interval_ids",
    "time_of_day_window",
    "normalised_time_encoding",
]
