"""Dynamic time warping (Berndt & Clifford 1994).

STSM follows STFGNN (Li & Zhu, AAAI 2021) in using DTW distances between
sensor time series to build a temporal-similarity adjacency matrix.  We
implement the exact O(T^2) dynamic program with an optional Sakoe-Chiba
band, plus the daily-profile downsampling used in practice to keep the
pairwise computation tractable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_CHUNK_PAIRS",
    "dtw_distance",
    "dtw_distance_matrix",
    "daily_profile",
    "downsample_profile",
]

#: Default pair-chunk size for :func:`dtw_distance_matrix`.  The batched
#: dynamic program keeps two ``(P, m + 1)`` float rows plus the gathered
#: ``(P, n)`` / ``(P, m)`` series copies alive at once, so bounding P
#: bounds peak memory: at 4096 pairs and 96-point daily profiles that is
#: a few MB, regardless of how large N(N-1)/2 grows.
DEFAULT_CHUNK_PAIRS = 4096


def dtw_distance(a: np.ndarray, b: np.ndarray, band: int | None = None) -> float:
    """DTW distance between two 1-D series under absolute-difference cost.

    Parameters
    ----------
    a, b:
        1-D arrays (lengths may differ).
    band:
        Optional Sakoe-Chiba band half-width: cells with ``|i - j| > band``
        are excluded, bounding the warp and the runtime.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("dtw_distance requires non-empty series")
    if band is not None and band < abs(n - m):
        raise ValueError(
            f"band {band} is narrower than the length difference {abs(n - m)}; no path exists"
        )
    cost = np.full((n + 1, m + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        if band is None:
            j_low, j_high = 1, m
        else:
            j_low = max(1, i - band)
            j_high = min(m, i + band)
        ai = a[i - 1]
        row = cost[i]
        prev = cost[i - 1]
        for j in range(j_low, j_high + 1):
            step = abs(ai - b[j - 1])
            row[j] = step + min(prev[j], row[j - 1], prev[j - 1])
    return float(cost[n, m])


def _dtw_batch(left: np.ndarray, right: np.ndarray, band: int | None) -> np.ndarray:
    """DTW distances for P aligned series pairs, vectorised across pairs.

    ``left`` is ``(P, n)`` and ``right`` is ``(P, m)``; returns ``(P,)``.
    The dynamic program iterates the n*m cell grid in Python but evaluates
    every cell for all P pairs at once, which keeps the per-pair cost
    negligible for the daily-profile lengths used here.
    """
    pairs, n = left.shape
    m = right.shape[1]
    prev = np.full((pairs, m + 1), np.inf)
    prev[:, 0] = 0.0
    for i in range(1, n + 1):
        row = np.full((pairs, m + 1), np.inf)
        cost_row = np.abs(left[:, i - 1 : i] - right)  # (P, m)
        if band is None:
            j_low, j_high = 1, m
        else:
            j_low = max(1, i - band)
            j_high = min(m, i + band)
        for j in range(j_low, j_high + 1):
            best = np.minimum(np.minimum(prev[:, j], row[:, j - 1]), prev[:, j - 1])
            row[:, j] = cost_row[:, j - 1] + best
        prev = row
    return prev[:, m]


def _dtw_batch_chunked(
    left: np.ndarray,
    right: np.ndarray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    band: int | None,
    chunk_pairs: int | None,
) -> np.ndarray:
    """Gather-and-batch DTW over index pairs, ``chunk_pairs`` at a time.

    Chunking only partitions the pair axis — each pair's dynamic program
    is independent (every vectorised op in :func:`_dtw_batch` is
    element-wise per pair), so the outputs are bit-identical to one
    monolithic batch while peak memory stays bounded by the chunk size
    instead of the full pair count.
    """
    total = len(pair_i)
    if chunk_pairs is None or chunk_pairs <= 0 or chunk_pairs >= total:
        return _dtw_batch(left[pair_i], right[pair_j], band)
    flat = np.empty(total)
    for low in range(0, total, chunk_pairs):
        high = min(low + chunk_pairs, total)
        flat[low:high] = _dtw_batch(
            left[pair_i[low:high]], right[pair_j[low:high]], band
        )
    return flat


def dtw_distance_matrix(
    series: np.ndarray,
    others: np.ndarray | None = None,
    band: int | None = None,
    chunk_pairs: int | None = DEFAULT_CHUNK_PAIRS,
) -> np.ndarray:
    """Pairwise DTW distances.

    Parameters
    ----------
    series:
        ``(N, T)`` array, one series per row.
    others:
        Optional ``(M, T')`` second set; when given, returns the ``(N, M)``
        cross matrix, otherwise the symmetric ``(N, N)`` self matrix.
    band:
        Sakoe-Chiba half-width applied to every pair.
    chunk_pairs:
        Evaluate at most this many pairs per batched dynamic program so
        the N(N-1)/2 self-pair (or N*M cross) grid never materialises at
        once — bit-identical outputs, bounded peak RSS.  ``None`` or a
        non-positive value disables chunking.
    """
    series = np.atleast_2d(np.asarray(series, dtype=float))
    if others is None:
        n = len(series)
        if n < 2:
            return np.zeros((n, n))
        upper_i, upper_j = np.triu_indices(n, k=1)
        flat = _dtw_batch_chunked(series, series, upper_i, upper_j, band, chunk_pairs)
        out = np.zeros((n, n))
        out[upper_i, upper_j] = flat
        out[upper_j, upper_i] = flat
        return out
    others = np.atleast_2d(np.asarray(others, dtype=float))
    n, m = len(series), len(others)
    grid_i, grid_j = np.meshgrid(np.arange(n), np.arange(m), indexing="ij")
    flat = _dtw_batch_chunked(
        series, others, grid_i.ravel(), grid_j.ravel(), band, chunk_pairs
    )
    return flat.reshape(n, m)


def downsample_profile(profiles: np.ndarray, resolution: int) -> np.ndarray:
    """Average ``(N, T_d)`` profiles down to ``resolution`` points.

    Used to bound the quadratic DTW cost on high-frequency datasets
    (e.g. 288 five-minute intervals -> 24 hourly points).  Trailing points
    that do not fill a full bucket are averaged into the last bucket.
    """
    profiles = np.atleast_2d(np.asarray(profiles, dtype=float))
    n, length = profiles.shape
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    if resolution >= length:
        return profiles
    bucket = length // resolution
    trimmed = profiles[:, : bucket * resolution].reshape(n, resolution, bucket).mean(axis=2)
    remainder = profiles[:, bucket * resolution :]
    if remainder.size:
        trimmed[:, -1] = (trimmed[:, -1] * bucket + remainder.sum(axis=1)) / (
            bucket + remainder.shape[1]
        )
    return trimmed


def daily_profile(values: np.ndarray, steps_per_day: int) -> np.ndarray:
    """Average each location's series into one mean daily profile.

    Parameters
    ----------
    values:
        ``(T, N)`` observation matrix.
    steps_per_day:
        ``T_d`` — number of observation intervals per day.

    Returns
    -------
    ``(N, steps_per_day)`` matrix of mean daily curves.  Computing DTW on
    these profiles instead of full histories is the standard STFGNN recipe
    the paper follows; it preserves the periodic structure DTW is meant to
    compare while keeping cost O(T_d^2).
    """
    values = np.asarray(values, dtype=float)
    steps, n = values.shape
    if steps_per_day <= 0:
        raise ValueError("steps_per_day must be positive")
    full_days = steps // steps_per_day
    if full_days == 0:
        # Shorter than one day: pad by repeating the partial day.
        padded = np.zeros((steps_per_day, n))
        padded[:steps] = values
        padded[steps:] = values.mean(axis=0, keepdims=True)
        return padded.T
    trimmed = values[: full_days * steps_per_day]
    return trimmed.reshape(full_days, steps_per_day, n).mean(axis=0).T
