"""Character-grid renderers for maps, matrices, and series."""

from __future__ import annotations

import numpy as np

__all__ = ["scatter_map", "split_map", "series_plot", "matrix_density", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _grid(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _to_cells(coords: np.ndarray, width: int, height: int) -> tuple[np.ndarray, np.ndarray]:
    """Map planar coordinates to character-grid cells (row 0 = top)."""
    coords = np.asarray(coords, dtype=float)
    x, y = coords[:, 0], coords[:, 1]
    span_x = max(x.max() - x.min(), 1e-9)
    span_y = max(y.max() - y.min(), 1e-9)
    col = np.clip(((x - x.min()) / span_x * (width - 1)).round().astype(int), 0, width - 1)
    row = np.clip(((y.max() - y) / span_y * (height - 1)).round().astype(int), 0, height - 1)
    return row, col


def scatter_map(
    coords: np.ndarray,
    width: int = 60,
    height: int = 20,
    marker: str = "o",
    labels: np.ndarray | None = None,
) -> str:
    """Render sensor positions as a character map (paper Fig. 5).

    Parameters
    ----------
    coords:
        ``(N, 2)`` planar coordinates.
    width / height:
        Character-grid size.
    marker:
        Character used when ``labels`` is None.
    labels:
        Optional ``(N,)`` array of single-character markers per sensor.
    """
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or coords.shape[1] != 2 or len(coords) == 0:
        raise ValueError("coords must be a non-empty (N, 2) array")
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    grid = _grid(width, height)
    rows, cols = _to_cells(coords, width, height)
    for index, (r, c) in enumerate(zip(rows, cols)):
        grid[r][c] = str(labels[index]) if labels is not None else marker
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(line) + "|" for line in grid)
    return f"{border}\n{body}\n{border}"


def split_map(coords: np.ndarray, split, width: int = 60, height: int = 20) -> str:
    """Render a :class:`~repro.data.splits.SpaceSplit` (paper Figs. 6/11).

    Markers: ``T`` training, ``V`` validation, ``U`` unobserved/test —
    mirroring the paper's red/pink/blue dots.
    """
    coords = np.asarray(coords, dtype=float)
    labels = np.full(len(coords), "?", dtype=object)
    labels[split.train] = "T"
    labels[split.validation] = "V"
    labels[split.test] = "U"
    legend = "T=train  V=validation  U=unobserved (test)"
    return scatter_map(coords, width=width, height=height, labels=labels) + "\n" + legend


def series_plot(
    series: dict[str, np.ndarray],
    width: int = 72,
    height: int = 12,
) -> str:
    """Render one or more aligned 1-D series as an ASCII chart.

    Each entry uses the first character of its name as the plot marker;
    later series overwrite earlier ones where they collide.
    """
    if not series:
        raise ValueError("series_plot needs at least one series")
    arrays = {name: np.asarray(values, dtype=float).ravel() for name, values in series.items()}
    length = max(len(v) for v in arrays.values())
    if length < 2:
        raise ValueError("series must have at least 2 points")
    for name, values in arrays.items():
        if not np.all(np.isfinite(values)):
            raise ValueError(f"series {name!r} contains non-finite values")
    low = min(v.min() for v in arrays.values())
    high = max(v.max() for v in arrays.values())
    span = max(high - low, 1e-9)
    grid = _grid(width, height)
    for name, values in arrays.items():
        marker = name[0] if name else "*"
        xs = np.linspace(0, width - 1, len(values)).round().astype(int)
        ys = np.clip(
            ((high - values) / span * (height - 1)).round().astype(int), 0, height - 1
        )
        for c, r in zip(xs, ys):
            grid[r][c] = marker
    lines = ["".join(line) for line in grid]
    header = "  ".join(f"{name[0]}={name}" for name in arrays)
    scale = f"[{low:.2f} .. {high:.2f}]"
    return header + "\n" + "\n".join(lines) + "\n" + scale


def matrix_density(matrix: np.ndarray, max_size: int = 60) -> str:
    """Render a matrix's non-zero structure (paper Fig. 7).

    Large matrices are block-aggregated down to ``max_size``; a cell is
    drawn by the fraction of non-zeros in its block ('.' sparse, '#' dense).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix_density expects a 2-D array")
    binary = (matrix != 0).astype(float)
    n, m = binary.shape
    step_r = max(1, int(np.ceil(n / max_size)))
    step_c = max(1, int(np.ceil(m / max_size)))
    rows = []
    shades = " .:*#"
    for r0 in range(0, n, step_r):
        row = []
        for c0 in range(0, m, step_c):
            block = binary[r0 : r0 + step_r, c0 : c0 + step_c]
            level = int(round(block.mean() * (len(shades) - 1)))
            row.append(shades[level])
        rows.append("".join(row))
    density = binary.mean()
    return "\n".join(rows) + f"\n(density {density:.3f})"


def sparkline(values: np.ndarray, width: int | None = None) -> str:
    """One-line unicode sparkline of a numeric series (training curves)."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("sparkline needs at least one value")
    if width is not None and values.size > width:
        # Average into `width` buckets.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([values[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    low, high = values.min(), values.max()
    span = max(high - low, 1e-12)
    levels = ((values - low) / span * (len(_SPARK_LEVELS) - 1)).round().astype(int)
    return "".join(_SPARK_LEVELS[level] for level in levels)
