"""Text-based visualisation (no plotting dependencies available).

Reproduces the paper's illustrative figures as terminal-renderable art:

* :func:`scatter_map` — sensor distribution maps (paper Fig. 5) and split
  visualisations with per-set markers (Fig. 6 left, Fig. 11);
* :func:`series_plot` — observation/prediction curves (Fig. 6 right);
* :func:`matrix_density` — adjacency sparsity view (Fig. 7);
* :func:`sparkline` — compact training-curve rendering for logs.
"""

from .render import matrix_density, scatter_map, series_plot, sparkline, split_map

__all__ = ["scatter_map", "split_map", "series_plot", "matrix_density", "sparkline"]
