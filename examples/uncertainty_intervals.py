"""Prediction intervals for a region without sensors.

Point forecasts answer "what will traffic be?"; deployment decisions
("can we skip installing sensors here?") also need "how wrong might we
be?".  This example builds three predictive distributions for the same
unobserved district — MC-dropout STSM, a seed ensemble of STSM, and
classical GP kriging — and scores their 80% intervals.

Take-away printed at the end: the neural intervals are sharp but badly
under-cover (they ignore the irreducible error of extrapolating into a
sensor-free region), while the GP's distance-aware variance is wide but
honest.  If you need calibrated bands out of the box, start from the GP
or recalibrate the neural intervals.

Run:  python examples/uncertainty_intervals.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import GPKrigingForecaster
from repro.core import DeepEnsembleForecaster, MCDropoutForecaster, make_stsm
from repro.data import WindowSpec, space_split, temporal_split
from repro.evaluation import evaluate_intervals, forecast_window_starts, stack_truth
from repro.data.synthetic import make_pems_bay

COVERAGE = 0.8
FAST = dict(hidden_dim=16, epochs=10, patience=4, batch_size=16,
            window_stride=4, top_k=8, dropout=0.2)


def make_member(seed: int):
    return make_stsm("pems-bay", seed=seed, **FAST)


def main() -> None:
    dataset = make_pems_bay(num_sensors=28, num_days=4)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=12, horizon=12)
    train_ix, _ = temporal_split(dataset.num_steps)
    starts = forecast_window_starts(dataset, spec, max_windows=12)
    truth = stack_truth(dataset, split, spec, starts)

    print(f"{len(split.unobserved)} unobserved sensors, "
          f"{len(starts)} test windows, nominal coverage {COVERAGE:.0%}\n")
    header = f"{'model':<18} {'PICP':>6} {'MPIW':>8} {'Winkler':>9} {'CRPS':>7}"
    print(header)
    print("-" * len(header))

    # 1. MC dropout: one model, stochastic passes.
    mc_model = MCDropoutForecaster(make_member(0), num_samples=12)
    mc_model.fit(dataset, split, spec, train_ix)
    mc = evaluate_intervals(mc_model.predict_samples(starts), truth, COVERAGE)
    print(f"{'STSM MC-dropout':<18} {mc.picp:>6.2f} {mc.mpiw:>8.2f} "
          f"{mc.winkler:>9.2f} {mc.crps:>7.2f}")

    # 2. Deep ensemble: three independently seeded members.
    ensemble = DeepEnsembleForecaster(make_member, num_members=3)
    ensemble.fit(dataset, split, spec, train_ix)
    en = evaluate_intervals(ensemble.predict_samples(starts), truth, COVERAGE)
    print(f"{'STSM ensemble':<18} {en.picp:>6.2f} {en.mpiw:>8.2f} "
          f"{en.winkler:>9.2f} {en.crps:>7.2f}")

    # 3. GP kriging: closed-form Gaussian predictive; sample it so all
    #    three methods run through the identical scoring path.
    gp = GPKrigingForecaster()
    gp.fit(dataset, split, spec, train_ix)
    mean, variance = gp.predict_with_variance(starts)
    sigma = np.sqrt(variance) * gp.scaler.std_
    rng = np.random.default_rng(0)
    samples = mean[None] + rng.standard_normal((32,) + mean.shape) * sigma
    gpm = evaluate_intervals(samples, truth, COVERAGE)
    print(f"{'GP kriging':<18} {gpm.picp:>6.2f} {gpm.mpiw:>8.2f} "
          f"{gpm.winkler:>9.2f} {gpm.crps:>7.2f}")

    print(
        "\nReading the table: PICP should sit near the nominal "
        f"{COVERAGE:.0%}.  The neural intervals are sharp (small MPIW) but "
        "under-cover; the GP trades width for honesty and usually wins the "
        "Winkler score, which prices both."
    )


if __name__ == "__main__":
    main()
