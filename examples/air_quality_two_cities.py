"""Scenario: a city without open air-quality data.

The paper's motivating case (3): one of two adjacent cities publishes
PM2.5 readings, the other does not.  We simulate the Beijing/Tianjin-style
two-cluster network, treat the second city as unobserved, and forecast its
next 24 hours — including how well regional pollution episodes (the
heavy-tailed peaks) are anticipated.

Run:  python examples/air_quality_two_cities.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import HistoricalAverageForecaster, IDWPersistenceForecaster
from repro.core import make_stsm
from repro.data import SpaceSplit, WindowSpec
from repro.data.synthetic import make_airq
from repro.evaluation import compute_metrics, evaluate_forecaster, forecast_window_starts


def two_city_split(dataset) -> SpaceSplit:
    """Observed = western city; unobserved = eastern city."""
    x = dataset.coords[:, 0]
    threshold = (x.min() + x.max()) / 2
    west = np.flatnonzero(x < threshold)
    east = np.flatnonzero(x >= threshold)
    # Keep the paper's 4:1 train/validation proportion inside the west city.
    order = west[np.argsort(dataset.coords[west, 0])]
    cut = max(1, int(round(len(order) * 0.8)))
    return SpaceSplit(
        train=np.sort(order[:cut]),
        validation=np.sort(order[cut:]),
        test=np.sort(east),
        name="two-city",
    )


def main() -> None:
    dataset = make_airq(num_sensors=24, num_days=40)
    print(f"dataset: {dataset.describe()}")
    split = two_city_split(dataset)
    print(f"observed city: {len(split.observed)} stations; "
          f"unobserved city: {len(split.unobserved)} stations")

    spec = WindowSpec(input_length=24, horizon=24)  # 24 h in / 24 h out
    model = make_stsm("airq", hidden_dim=16, epochs=15, patience=5,
                      batch_size=16, window_stride=2)
    result = evaluate_forecaster(model, dataset, split, spec, max_test_windows=12)
    print(f"\nSTSM               {result.metrics}")

    # Context: forecasting a whole city with zero history is hard — even
    # strong models may carry a level offset.  The naive references show
    # where the floor is (the paper's AirQ R² values are near zero too).
    for reference in (HistoricalAverageForecaster(), IDWPersistenceForecaster()):
        ref = evaluate_forecaster(reference, dataset, split, spec, max_test_windows=12)
        print(f"{reference.name:<18} {ref.metrics}")

    # Episode detection: can the model see high-pollution hours coming?
    starts = forecast_window_starts(dataset, spec, max_windows=12)
    predictions = model.predict(starts)
    truth = np.stack(
        [
            dataset.values[s + spec.input_length : s + spec.total][:, split.unobserved]
            for s in starts
        ]
    )
    threshold = np.percentile(dataset.values[:, split.observed], 85)
    episode = truth > threshold
    if episode.any():
        hit_rate = float((predictions[episode] > threshold * 0.8).mean())
        episode_metrics = compute_metrics(predictions[episode], truth[episode])
        print(f"\nepisode hours (> {threshold:.0f} µg/m³): {int(episode.sum())}")
        print(f"episode hit rate (pred > 80% of threshold): {hit_rate:.1%}")
        print(f"episode-only errors: {episode_metrics}")
    else:
        print("\nno pollution episodes in the evaluated windows")


if __name__ == "__main__":
    main()
