"""Terminal atlas: sensor maps, splits, adjacency, and training curves.

Reproduces the paper's illustrative figures as terminal art via
``repro.viz`` (no plotting stack required): the five dataset sensor maps
(Fig. 5), the train/validation/unobserved partitioning (Fig. 6), the ring
layout (Fig. 11), and the A_s vs A_sg sparsity structure (Fig. 7).

Run:  python examples/sensor_atlas.py
"""

from __future__ import annotations

import numpy as np

from repro.data import space_split
from repro.data.synthetic import make_dataset
from repro.graph import euclidean_distance_matrix, gaussian_kernel_adjacency
from repro.viz import matrix_density, scatter_map, sparkline, split_map


def main() -> None:
    print("=== Sensor maps (paper Fig. 5) ===")
    for key in ("pems-bay", "melbourne", "airq"):
        dataset = make_dataset(key, num_sensors=28, num_days=1)
        print(f"\n[{key}: {dataset.num_locations} sensors]")
        print(scatter_map(dataset.coords, width=56, height=12))

    dataset = make_dataset("pems-bay", num_sensors=36, num_days=1)

    print("\n=== Space splits (paper Figs. 6 and 11) ===")
    for kind in ("horizontal", "ring"):
        print(f"\n[{kind} split]")
        print(split_map(dataset.coords, space_split(dataset.coords, kind),
                        width=56, height=12))

    print("\n=== Adjacency sparsity (paper Fig. 7) ===")
    distances = euclidean_distance_matrix(dataset.coords)
    sigma = distances[~np.eye(len(distances), dtype=bool)].std() * 0.35
    for name, eps in (("A_s (eps=0.05)", 0.05), ("A_sg (eps=0.5)", 0.5)):
        adjacency = gaussian_kernel_adjacency(distances, eps, sigma=sigma)
        print(f"\n[{name}]")
        print(matrix_density(adjacency, max_size=36))

    print("\n=== Training curve sparkline ===")
    fake_loss = 1.0 / np.sqrt(np.arange(1, 40)) + 0.02 * np.random.default_rng(0).random(39)
    print(f"loss over epochs: {sparkline(fake_loss, width=39)}")


if __name__ == "__main__":
    main()
