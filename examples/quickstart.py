"""Quickstart: forecast an unobserved region in ~a minute on CPU.

Builds a small synthetic PEMS-Bay-style dataset, splits it spatially
(south = observed sensors, north = the region without observations),
trains STSM, and prints test metrics against the naive references.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines import HistoricalAverageForecaster, IDWPersistenceForecaster
from repro.core import make_stsm
from repro.data import WindowSpec, space_split
from repro.data.synthetic import make_pems_bay
from repro.evaluation import evaluate_forecaster


def main() -> None:
    # 1. A 32-sensor, 4-day highway network (synthetic PEMS-Bay stand-in).
    dataset = make_pems_bay(num_sensors=32, num_days=4)
    print(f"dataset: {dataset.describe()}")

    # 2. Spatial split: the paper's 4:1:5 train/validation/test by latitude.
    #    Test locations have no historical data at all.
    split = space_split(dataset.coords, "horizontal")
    print(
        f"observed sensors: {len(split.observed)}, "
        f"unobserved region: {len(split.unobserved)} sensors"
    )

    # 3. Forecast the next hour from the last hour (12 x 5-minute steps).
    spec = WindowSpec(input_length=12, horizon=12)

    # 4. Train the full STSM (selective masking + contrastive learning).
    #    `make_stsm("pems-bay", ...)` applies the paper's Table 3 parameters;
    #    the overrides shrink the budget to quickstart size.
    model = make_stsm(
        "pems-bay",
        hidden_dim=16,
        epochs=15,
        patience=5,
        batch_size=16,
        window_stride=4,
        top_k=8,
    )
    result = evaluate_forecaster(model, dataset, split, spec, max_test_windows=16)
    print(f"\nSTSM   trained {result.fit_report.epochs} epochs "
          f"in {result.fit_report.train_seconds:.0f}s")
    print(f"STSM   {result.metrics}")

    # 5. Naive references for context.
    for reference in (HistoricalAverageForecaster(), IDWPersistenceForecaster()):
        ref = evaluate_forecaster(reference, dataset, split, spec, max_test_windows=16)
        print(f"{reference.name:<22} {ref.metrics}")


if __name__ == "__main__":
    main()
