"""Planning a staged sensor roll-out with STSM.

Scenario (the paper's §1 motivation, observed in Hong Kong): a city
deploys sensors region by region.  The southern base already has sensors;
a corridor towards the northern core comes online in stages; the core
itself will stay sensor-free for years.  At each stage the city wants
forecasts for the core — and wants to know what the next deployment batch
buys.

The run prints core-forecast error per stage for three predictors and
usually shows a counter-intuitive shape: the half-deployed stage can be
WORSE than no deployment for locality-based methods, because the newly
sensed corridor zone behaves differently from the core (arterial vs local
roads).  Proximity is not similarity — the observation that motivates
STSM's selective masking.

Run:  python examples/progressive_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import IDWPersistenceForecaster, INCREASEForecaster
from repro.core import make_stsm
from repro.data import WindowSpec, progressive_splits
from repro.data.synthetic import make_pems_bay
from repro.evaluation import compute_metrics, forecast_window_starts

STAGES = (0.0, 0.5, 1.0)
FAST_STSM = dict(hidden_dim=16, epochs=12, patience=4, batch_size=16,
                 window_stride=4, top_k=8)


def main() -> None:
    dataset = make_pems_bay(num_sensors=32, num_days=4)
    spec = WindowSpec(input_length=12, horizon=12)
    splits, core = progressive_splits(dataset.coords, "horizontal", stages=STAGES)
    starts = forecast_window_starts(dataset, spec, max_windows=12)
    core_truth = np.stack(
        [dataset.values[s + spec.input_length : s + spec.total][:, core] for s in starts]
    )
    train_ix = np.arange(int(round(dataset.num_steps * 0.7)))

    print(f"core region: {len(core)} sensors that never come online\n")
    header = f"{'stage':>6} {'observed':>9} {'IDW':>8} {'INCREASE':>9} {'STSM':>8}"
    print(header)
    print("-" * len(header))

    for stage, split in zip(STAGES, splits):
        positions = np.searchsorted(split.unobserved, core)
        rmse = {}
        for name, model in (
            ("IDW", IDWPersistenceForecaster()),
            ("INCREASE", INCREASEForecaster(iterations=150)),
            ("STSM", make_stsm("pems-bay", **FAST_STSM)),
        ):
            model.fit(dataset, split, spec, train_ix)
            predictions = model.predict(starts)[:, :, positions]
            rmse[name] = compute_metrics(predictions, core_truth).rmse
        print(
            f"{stage:>6.0%} {len(split.observed):>9} {rmse['IDW']:>8.2f} "
            f"{rmse['INCREASE']:>9.2f} {rmse['STSM']:>8.2f}"
        )

    print(
        "\nIf the mid-stage numbers are worse than stage 0, the newly sensed "
        "corridor zone is dissimilar to the core: proximity misleads, and "
        "global or similarity-weighted aggregation is safer."
    )


if __name__ == "__main__":
    main()
