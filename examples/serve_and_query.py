"""Wire-level serving walkthrough: fit -> bundle -> serve -> query -> drain.

The full production loop on a laptop-sized problem:

1. fit a small STSM on a synthetic city (an unobserved-region model,
   exactly as in the paper's setup);
2. save a **checkpoint bundle** — the directory a server boots from
   with no training (model weights + dataset recipe + split + warm-up
   windows);
3. launch a worker (in-process here, so the example is single-file;
   ``python -m repro.serving serve --checkpoint-dir ... --workers 4``
   is the same thing as processes behind one SO_REUSEPORT port);
4. query it over real HTTP with :class:`ForecastClient` — and check the
   served bytes equal the local model's own ``predict`` bytes;
5. read the telemetry and drain gracefully.

Run::

    PYTHONPATH=src python examples/serve_and_query.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import STSMConfig, STSMForecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_dataset
from repro.evaluation import forecast_window_starts
from repro.serving import ModelNotFound, ServingRuntime
from repro.serving.transport import (
    BundleEntry,
    ForecastClient,
    ForecastHTTPServer,
    load_bundle,
    save_bundle,
)


def main() -> int:
    # ------------------------------------------------------------------
    # 1. Fit: a tiny STSM for one synthetic city's unobserved region.
    # ------------------------------------------------------------------
    recipe = {"name": "pems-bay", "num_sensors": 16, "num_days": 2, "seed": 7}
    dataset = make_dataset(recipe["name"], num_sensors=recipe["num_sensors"],
                           num_days=recipe["num_days"], seed=recipe["seed"])
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=8, horizon=8)
    train_ix, _ = temporal_split(dataset.num_steps)
    model = STSMForecaster(STSMConfig(
        hidden_dim=8, num_blocks=1, tcn_levels=2, gcn_depth=1, epochs=1,
        patience=1, batch_size=8, window_stride=8, top_k=6, seed=recipe["seed"],
    ))
    print(f"[1/5] fitting STSM on {dataset.name} "
          f"({len(split.observed)} observed -> {len(split.unobserved)} unobserved)")
    model.fit(dataset, split, spec, train_ix)
    starts = forecast_window_starts(dataset, spec, max_windows=16)

    with tempfile.TemporaryDirectory(prefix="repro-serve-example-") as tmp:
        # --------------------------------------------------------------
        # 2. Bundle: everything a cold server needs, in one directory.
        # --------------------------------------------------------------
        bundle_dir = Path(tmp)
        save_bundle(bundle_dir, {
            "stsm/pems-bay": BundleEntry(
                forecaster=model,
                dataset=recipe,
                warmup_starts=[int(s) for s in starts],
            ),
        })
        print(f"[2/5] bundle written: {sorted(p.name for p in bundle_dir.iterdir())}")

        # --------------------------------------------------------------
        # 3. Serve: restore from the bundle and put it on a socket.
        #    (`python -m repro.serving serve` does this per worker
        #    process; in-process keeps the example self-contained.)
        # --------------------------------------------------------------
        restored, warmup = load_bundle(bundle_dir)["stsm/pems-bay"]
        with ServingRuntime(deadline_ms=2.0, log_batches=True) as runtime:
            runtime.register("stsm/pems-bay", restored)
            with ForecastHTTPServer(runtime).start() as server:
                runtime.warm_up("stsm/pems-bay", np.asarray(warmup))
                server.set_ready()  # readiness gate: only now /healthz is 200
                print(f"[3/5] serving on http://127.0.0.1:{server.port} "
                      f"(warmed {len(warmup)} windows)")

                # ------------------------------------------------------
                # 4. Query over the wire; verify bitwise parity.
                # ------------------------------------------------------
                with ForecastClient("127.0.0.1", server.port) as client:
                    assert client.wait_ready(10.0)
                    one = client.forecast_one("stsm/pems-bay", int(starts[0]))
                    many = client.forecast("stsm/pems-bay",
                                           [int(s) for s in starts[:4]])
                    print(f"[4/5] served shapes: one={one.shape} many={many.shape}")
                    # The wire adds zero drift: served bytes == the bytes
                    # this process's own warmed service holds.
                    local = runtime.forecast(
                        "stsm/pems-bay", np.asarray(starts[:4], dtype=int)
                    )
                    assert np.array_equal(many, local), "wire drifted!"
                    print("      bitwise parity with the local serving path: OK")
                    try:
                        client.forecast_one("stsm/unknown-city", 0)
                    except ModelNotFound as exc:
                        print(f"      structured 404 over the wire: {exc}")

                    # --------------------------------------------------
                    # 5. Telemetry, then graceful drain.
                    # --------------------------------------------------
                    stats = client.stats()
                    totals = stats["runtime"]["totals"]
                    transport = stats["transport"]
                    print(f"[5/5] completed={totals['completed']} "
                          f"cache-hit={totals['cache_hit_pct']:.0f}% "
                          f"bytes_out={transport['bytes_out']}")
            runtime.drain()
    print("      drained and shut down cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
