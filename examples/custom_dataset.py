"""Using STSM on your own data.

Shows the minimal wrapping needed to run the public API on external
observations: a ``(T, N)`` value matrix, ``(N, 2)`` coordinates, and the
static location features the selective-masking module consumes (POI
category counts, a prosperity scalar, and 4-d road attributes).  Here the
"external data" is synthesised inline; replace the arrays with your own.

Run:  python examples/custom_dataset.py
"""

from __future__ import annotations

import numpy as np

from repro.core import make_stsm
from repro.data import WindowSpec, space_split
from repro.data.dataset import LocationFeatures, SpatioTemporalDataset
from repro.evaluation import evaluate_forecaster


def load_my_observations():
    """Stand-in for your ETL: 20 sensors, 3 days of 15-minute samples."""
    rng = np.random.default_rng(99)
    num_sensors, steps_per_day, days = 20, 96, 3
    coords = rng.uniform(0, 5_000, size=(num_sensors, 2))
    t = np.arange(steps_per_day * days)
    daily = 1.0 + 0.5 * np.sin(2 * np.pi * t / steps_per_day - np.pi / 2)
    base = rng.uniform(30, 60, size=num_sensors)
    values = base[None, :] * daily[:, None] + rng.normal(0, 2, size=(len(t), num_sensors))
    return values, coords, steps_per_day


def main() -> None:
    values, coords, steps_per_day = load_my_observations()
    num_sensors = values.shape[1]
    rng = np.random.default_rng(0)

    # Static features: if you have OpenStreetMap extracts, put the real
    # POI category counts / floors / road attributes here.  Zeros are a
    # valid fallback — selective masking then degrades gracefully toward
    # the spatial-proximity term.
    features = LocationFeatures(
        poi_counts=rng.poisson(2.0, size=(num_sensors, 26)).astype(float),
        scale=rng.gamma(4.0, 2.0, size=num_sensors),
        road=np.column_stack(
            [
                rng.integers(1, 5, num_sensors),  # highway level
                rng.choice([40.0, 60.0, 80.0], num_sensors),  # maxspeed
                rng.integers(0, 2, num_sensors),  # is_oneway
                rng.integers(1, 4, num_sensors),  # lanes
            ]
        ).astype(float),
    )

    dataset = SpatioTemporalDataset(
        name="my-city",
        values=values,
        coords=coords,
        steps_per_day=steps_per_day,
        features=features,
        interval_minutes=15.0,
    )
    split = space_split(dataset.coords, "vertical")
    spec = WindowSpec(input_length=8, horizon=8)

    model = make_stsm(hidden_dim=12, epochs=10, patience=4,
                      batch_size=16, window_stride=2, top_k=6)
    result = evaluate_forecaster(model, dataset, split, spec, max_test_windows=8)
    print(f"unobserved-region forecast quality: {result.metrics}")

    # Production use: call predict() with window start indices; rows are
    # ordered like split.unobserved.
    predictions = model.predict(np.array([dataset.num_steps - spec.total]))
    print(f"latest forecast shape: {predictions.shape} "
          f"(windows, horizon steps, unobserved sensors)")


if __name__ == "__main__":
    main()
