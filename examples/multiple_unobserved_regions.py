"""Scenario: several districts without sensors at once.

The paper's conclusion proposes extending STSM to multiple unobserved
regions; this example runs that extension (``repro.core.multiregion``).
Three disjoint patches of a highway network have no data; selective
masking scores each observed sub-graph against its best-matching patch.

Run:  python examples/multiple_unobserved_regions.py
"""

from __future__ import annotations

import numpy as np

from repro.core import make_stsm, make_stsm_r, multi_region_split
from repro.data import WindowSpec
from repro.data.synthetic import make_pems_bay
from repro.evaluation import evaluate_forecaster


def main() -> None:
    dataset = make_pems_bay(num_sensors=36, num_days=4)
    print(f"dataset: {dataset.describe()}")

    split = multi_region_split(
        dataset.coords, num_regions=3, unobserved_ratio=0.4,
        rng=np.random.default_rng(7),
    )
    print(f"observed: {len(split.observed)} sensors; "
          f"unobserved: {len(split.unobserved)} in 3 disjoint patches")

    spec = WindowSpec(input_length=12, horizon=12)
    common = dict(hidden_dim=16, epochs=15, patience=5, batch_size=16,
                  window_stride=4, top_k=8, num_unobserved_regions=3)
    for maker in (make_stsm, make_stsm_r):
        model = maker("pems-bay", **common)
        result = evaluate_forecaster(model, dataset, split, spec, max_test_windows=12)
        print(f"{model.name:<8} {result.metrics}")


if __name__ == "__main__":
    main()
