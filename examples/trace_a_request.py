"""Observability walkthrough: trace one request, scrape the metrics.

What a production debugging session looks like on a laptop-sized
problem:

1. fit a small STSM and serve it over HTTP with observability ON
   (``set_obs_enabled(True)`` here; ``REPRO_OBS=1`` in a shell does the
   same for a real deployment — off by default, zero overhead);
2. issue one traced forecast: the client mints a trace id, sends it in
   the wire frame's control header, and every layer it crosses —
   server handler, scheduler, service, artifact store — records spans
   under that SAME id;
3. pull the spans back over ``GET /v1/traces`` and render the flame
   tree with the ``python -m repro.obs report`` renderer;
4. scrape ``GET /metrics`` (Prometheus exposition) and read the same
   counters as JSON from the runtime's ``stats()``.

Run::

    PYTHONPATH=src python examples/trace_a_request.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import STSMConfig, STSMForecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_dataset
from repro.engine import ArtifactStore
from repro.evaluation import forecast_window_starts
from repro.obs import set_obs_enabled
from repro.obs.__main__ import report
from repro.serving import ServingRuntime
from repro.serving.service import ForecastService
from repro.serving.transport import ForecastClient, ForecastHTTPServer


def main() -> int:
    # ------------------------------------------------------------------
    # 1. Fit and serve with observability on.
    # ------------------------------------------------------------------
    dataset = make_dataset("pems-bay", num_sensors=16, num_days=2, seed=7)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=8, horizon=8)
    train_ix, _ = temporal_split(dataset.num_steps)
    model = STSMForecaster(STSMConfig(
        hidden_dim=8, num_blocks=1, tcn_levels=2, gcn_depth=1, epochs=1,
        patience=1, batch_size=8, window_stride=8, top_k=6, seed=7,
    ))
    print("[1/4] fitting STSM ...")
    model.fit(dataset, split, spec, train_ix)
    starts = forecast_window_starts(dataset, spec, max_windows=16)

    set_obs_enabled(True)  # what REPRO_OBS=1 does for a whole process
    try:
        # A store-backed service so the trace reaches the deepest layer
        # (artifact-store probes show up as store.get / store.put spans).
        store = ArtifactStore()
        service = ForecastService(model, store=store)
        with ServingRuntime(deadline_ms=2.0) as runtime:
            runtime.attach_store(store)
            runtime.register("stsm/pems-bay", service)
            with ForecastHTTPServer(runtime).start() as server:
                server.set_ready()
                print(f"      serving on http://127.0.0.1:{server.port} "
                      f"with tracing enabled")

                # ------------------------------------------------------
                # 2. One traced request end to end.
                # ------------------------------------------------------
                with ForecastClient("127.0.0.1", server.port) as client:
                    block = client.forecast_one("stsm/pems-bay", int(starts[0]))
                    trace_id = client.last_trace_id
                    print(f"[2/4] served a {block.shape} block under "
                          f"trace {trace_id}")

                    # ------------------------------------------------------
                    # 3. Export the trace and render the flame tree.
                    # ------------------------------------------------------
                    spans = client.traces(trace_id)
                    print(f"[3/4] {len(spans)} span(s) from GET /v1/traces:")
                    report(spans)

                    # ------------------------------------------------------
                    # 4. Metrics: Prometheus text and the stats() mirror.
                    # ------------------------------------------------------
                    exposition = client.metrics_text()
                    wanted = ("repro_requests_completed_total",
                              "repro_request_latency_seconds_bucket",
                              "repro_store_hits_total")
                    lines = [line for line in exposition.splitlines()
                             if line.startswith(wanted)]
                    print(f"[4/4] GET /metrics ({len(exposition.splitlines())} "
                          f"lines); a few:")
                    for line in lines[:6]:
                        print(f"      {line}")
                    collected = runtime.stats()["metrics"]["collected"]["runtime"]
                    completed = collected[
                        'repro_requests_completed_total{model="stsm/pems-bay"}'
                    ]
                    print(f"      stats()['metrics'] agrees: "
                          f"completed={completed}")
            runtime.drain()
    finally:
        set_obs_enabled(None)  # back to the environment's default
    print("      done")
    return 0


if __name__ == "__main__":
    sys.exit(main())
