"""Inspecting the selective masking module (paper §4.1, Table 8).

Shows what the masking machinery actually does, without any training:

1. per-location masking probabilities from POI/road/distance similarity;
2. draws from selective vs random masking;
3. the similarity gain (Table 8) that explains why selective masking
   transfers better to the unobserved region.

Run:  python examples/masking_strategies.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SelectiveMasker, compute_subgraph_similarity, random_subgraph_mask
from repro.data import space_split
from repro.data.synthetic import make_pems_bay
from repro.experiments.table8_simgain import similarity_gain
from repro.graph import euclidean_distance_matrix, gaussian_kernel_adjacency


def main() -> None:
    dataset = make_pems_bay(num_sensors=36, num_days=2)
    split = space_split(dataset.coords, "horizontal")
    observed, unobserved = split.observed, split.unobserved

    distances = euclidean_distance_matrix(dataset.coords)
    sigma = distances[~np.eye(len(distances), dtype=bool)].std() * 0.35
    a_sg = gaussian_kernel_adjacency(distances, threshold=0.5, sigma=sigma)

    similarity = compute_subgraph_similarity(
        dataset.features, dataset.coords, a_sg, observed, unobserved
    )
    masker = SelectiveMasker(
        similarity, a_sg[np.ix_(observed, observed)], mask_ratio=0.5, top_k=7
    )

    print("per-location masking probabilities (observed locations):")
    order = np.argsort(masker.probabilities)[::-1]
    for rank, local in enumerate(order[:8], start=1):
        print(
            f"  #{rank}: sensor {observed[local]:>3}  "
            f"p={masker.probabilities[local]:.3f}  "
            f"cos-sim={similarity.embedding_similarity[local]:+.3f}  "
            f"proximity={similarity.spatial_proximity[local]:.2e}"
        )
    zeroed = int((masker.probabilities == 0).sum())
    print(f"  ... {zeroed} locations outside top-K have probability 0")

    rng = np.random.default_rng(0)
    selective_mask = masker.draw(rng)
    random_mask = random_subgraph_mask(
        a_sg[np.ix_(observed, observed)], 0.5, np.random.default_rng(0)
    )
    scores = similarity.embedding_similarity
    print(f"\none selective draw: {len(selective_mask)} locations, "
          f"mean similarity {scores[selective_mask].mean():.3f}")
    print(f"one random draw:    {len(random_mask)} locations, "
          f"mean similarity {scores[random_mask].mean():.3f}")

    stats = similarity_gain(dataset, split, top_k=7, draws=100)
    print(f"\nTable-8-style gain over 100 draws: {stats['gain_percent']:.1f}% "
          f"(selective {stats['selective']:.3f} vs random {stats['random']:.3f})")


if __name__ == "__main__":
    main()
