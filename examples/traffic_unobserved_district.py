"""Scenario: progressive sensor roll-out across a city.

The paper's motivating case (1): sensors are deployed district by
district; the newest district has no history yet, but planners need speed
forecasts there today.  We simulate a Melbourne-style urban grid, treat
the eastern district as not-yet-instrumented, and compare STSM against the
adapted kriging baselines — including the per-horizon error profile
(how fast accuracy degrades from +15 min to +2 h).

Run:  python examples/traffic_unobserved_district.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import INCREASEForecaster, IGNNKForecaster
from repro.core import make_stsm
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_melbourne
from repro.evaluation import evaluate_forecaster, forecast_window_starts


def per_horizon_rmse(model, dataset, split, spec, starts) -> np.ndarray:
    """RMSE at each forecast step (+1 .. +T')."""
    predictions = model.predict(starts)
    truth = np.stack(
        [
            dataset.values[s + spec.input_length : s + spec.total][:, split.unobserved]
            for s in starts
        ]
    )
    return np.sqrt(((predictions - truth) ** 2).mean(axis=(0, 2)))


def main() -> None:
    dataset = make_melbourne(num_sensors=30, num_days=6)
    print(f"dataset: {dataset.describe()}")

    # The eastern district (highest x) is the new, sensorless one.
    split = space_split(dataset.coords, "vertical")
    spec = WindowSpec(input_length=8, horizon=8)  # 2 h in / 2 h out at 15 min

    models = [
        make_stsm("melbourne", hidden_dim=16, epochs=15, patience=5,
                  batch_size=16, window_stride=2, top_k=8),
        INCREASEForecaster(iterations=150),
        IGNNKForecaster(iterations=150),
    ]
    fitted = []
    print(f"\n{'model':<10} {'RMSE':>7} {'MAE':>7} {'MAPE':>7} {'R2':>7}")
    for model in models:
        result = evaluate_forecaster(model, dataset, split, spec, max_test_windows=16)
        metrics = result.metrics
        print(f"{model.name:<10} {metrics.rmse:>7.3f} {metrics.mae:>7.3f} "
              f"{metrics.mape:>7.3f} {metrics.r2:>7.3f}")
        fitted.append(model)

    # Horizon profile: how errors grow with lead time.
    starts = forecast_window_starts(dataset, spec, max_windows=16)
    print("\nRMSE by lead time (minutes ahead):")
    leads = [(i + 1) * int(dataset.interval_minutes) for i in range(spec.horizon)]
    print("lead  " + "  ".join(f"{lead:>6}" for lead in leads))
    for model in fitted:
        profile = per_horizon_rmse(model, dataset, split, spec, starts)
        print(f"{model.name:<6}" + "  ".join(f"{v:>6.2f}" for v in profile))


if __name__ == "__main__":
    main()
