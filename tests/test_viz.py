"""Text-rendering module (reproduces the paper's illustrative figures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import space_split
from repro.viz import matrix_density, scatter_map, series_plot, sparkline, split_map


@pytest.fixture
def coords():
    return np.random.default_rng(0).uniform(0, 100, size=(30, 2))


class TestScatterMap:
    def test_dimensions(self, coords):
        art = scatter_map(coords, width=40, height=10)
        lines = art.splitlines()
        assert len(lines) == 12  # 10 rows + 2 borders
        assert all(len(line) == 42 for line in lines)

    def test_all_sensors_drawn(self, coords):
        art = scatter_map(coords, width=60, height=30, marker="o")
        assert art.count("o") >= 1
        assert art.count("o") <= len(coords)

    def test_corner_points_mapped(self):
        coords = np.array([[0.0, 0.0], [10.0, 10.0]])
        art = scatter_map(coords, width=10, height=5, marker="x")
        lines = art.splitlines()[1:-1]
        assert lines[0][10] == "x"  # top-right (max y, max x)
        assert lines[-1][1] == "x"  # bottom-left

    def test_bad_input_rejected(self):
        with pytest.raises(ValueError):
            scatter_map(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            scatter_map(np.zeros((3, 2)), width=1)


class TestSplitMap:
    def test_markers_present(self, coords):
        split = space_split(coords, "horizontal")
        art = split_map(coords, split)
        assert "T" in art and "V" in art and "U" in art
        assert "unobserved" in art

    def test_contiguous_split_layout(self, coords):
        """Horizontal split: U markers should be in the upper half."""
        split = space_split(coords, "horizontal")
        art = split_map(coords, split, width=40, height=20)
        lines = art.splitlines()[1:21]
        top = "".join(lines[:10])
        bottom = "".join(lines[10:])
        assert top.count("U") > bottom.count("U")
        assert bottom.count("T") > top.count("T")


class TestSeriesPlot:
    def test_renders_multiple_series(self):
        t = np.linspace(0, 2 * np.pi, 50)
        art = series_plot({"sin": np.sin(t), "cos": np.cos(t)}, width=50, height=8)
        assert "s=sin" in art and "c=cos" in art
        assert "s" in art.splitlines()[1]

    def test_scale_footer(self):
        art = series_plot({"x": np.array([1.0, 5.0, 3.0])})
        assert "[1.00 .. 5.00]" in art

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_plot({})
        with pytest.raises(ValueError):
            series_plot({"x": np.array([1.0])})


class TestMatrixDensity:
    def test_dense_vs_sparse(self):
        dense = matrix_density(np.ones((10, 10)))
        sparse = matrix_density(np.eye(10))
        assert "#" in dense
        assert dense.count("#") > sparse.count("#")

    def test_density_footer(self):
        art = matrix_density(np.eye(4))
        assert "(density 0.250)" in art

    def test_large_matrix_aggregated(self):
        art = matrix_density(np.ones((300, 300)), max_size=30)
        body = art.splitlines()[0]
        assert len(body) <= 60

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            matrix_density(np.zeros(5))


class TestSparkline:
    def test_monotone_series(self):
        art = sparkline(np.arange(8))
        assert art[0] == "▁" and art[-1] == "█"
        assert len(art) == 8

    def test_width_bucketing(self):
        art = sparkline(np.arange(100), width=10)
        assert len(art) == 10

    def test_constant_series(self):
        art = sparkline(np.full(5, 3.0))
        assert len(art) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline(np.array([]))
