"""Shared fixtures for the streaming subsystem tests."""

from __future__ import annotations

import pytest

from repro.core import STSMConfig
from repro.data import WindowSpec, space_split
from repro.data.synthetic import make_pems_bay
from repro.engine import reset_store


@pytest.fixture(autouse=True)
def _isolated_store():
    """RefitScheduler installs its store process-wide; undo after each test."""
    yield
    reset_store()


@pytest.fixture(scope="session")
def feed_dataset():
    """A 10-sensor, 1-day feed (288 five-minute steps) — fast to refit on."""
    return make_pems_bay(num_sensors=10, num_days=1, seed=3)


@pytest.fixture(scope="session")
def feed_split(feed_dataset):
    return space_split(feed_dataset.coords, "horizontal")


@pytest.fixture(scope="session")
def feed_spec():
    return WindowSpec(input_length=8, horizon=8)


@pytest.fixture()
def feed_config():
    # batch_size/window_stride sized so a 64-step rolling window yields
    # full training batches (13 starts -> 3 batches of 4): the
    # contrastive loss drops partial batches, and a config whose only
    # batch is partial would never update a weight — making every
    # "parity" assertion vacuously true.
    return STSMConfig(
        hidden_dim=8, num_blocks=1, tcn_levels=2, gcn_depth=1,
        epochs=1, patience=1, batch_size=4, window_stride=4,
        top_k=5, seed=3,
    )
