"""LiveSwapBridge: blue/green deploys, refit-lag telemetry, no drops."""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.interfaces import FitReport, Forecaster
from repro.serving import ServingRuntime
from repro.streaming import LiveSwapBridge
from repro.streaming.refit import RefitRecord


class _ScaledModel(Forecaster):
    """Toy fitted model whose outputs identify its generation."""

    name = "scaled"

    def __init__(self, scale: float, delay_s: float = 0.0) -> None:
        self.scale = scale
        self.delay_s = delay_s

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        return FitReport()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        if self.delay_s:
            time.sleep(self.delay_s)
        starts = np.asarray(window_starts, dtype=float)
        return starts[:, None, None] + np.zeros((1, 2, 3)) + self.scale


def _record(index: int) -> RefitRecord:
    now = time.monotonic()
    return RefitRecord(
        index=index, window_start=index * 8, window_end=index * 8 + 64,
        fit_seconds=0.2, warm_started=index > 0, epochs=1, best_val_rmse=0.0,
        checkpoint_dir="unused", data_ready_monotonic=now - 0.5,
        fitted_monotonic=now - 0.1,
    )


class TestDeploy:
    def test_first_deploy_registers_then_swaps(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            bridge = LiveSwapBridge(runtime, "live")
            bridge.deploy(_ScaledModel(1000.0))
            assert bridge.live
            assert runtime.forecast("live", np.array([3]))[0, 0, 0] == 1003.0
            bridge.deploy(_ScaledModel(2000.0))
            assert runtime.forecast("live", np.array([3]))[0, 0, 0] == 2003.0
            assert [d["swap"] for d in bridge.deploys] == [False, True]

    def test_streaming_section_reaches_runtime_stats(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            bridge = LiveSwapBridge(runtime, "live")
            bridge.deploy(_ScaledModel(1.0), record=_record(0))
            bridge.deploy(_ScaledModel(2.0), record=_record(1))
            stats = runtime.stats()
            streaming = stats["streaming"]
            assert streaming["model"] == "live"
            assert streaming["deploys"] == 2
            assert streaming["swaps"] == 1
            lag = streaming["refit_lag"]
            assert 0 < lag["last_seconds"] < 10
            assert lag["max_seconds"] >= lag["mean_seconds"] > 0
            assert stats["swaps"]["count"] == 1  # runtime's own swap ledger

    def test_refit_breakdown_recorded_per_deploy(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            bridge = LiveSwapBridge(runtime, "live")
            bridge.deploy(_ScaledModel(1.0), record=_record(0))
            entry = bridge.deploys[0]
            assert entry["refit_index"] == 0
            assert entry["window"] == [0, 64]
            assert entry["refit_lag_seconds"] > entry["fit_lag_seconds"] > 0
            assert entry["swap_seconds"] >= 0


class TestNoDropAcrossSwaps:
    def test_concurrent_load_survives_repeated_swaps(self):
        """The acceptance gate: continuous concurrent traffic across
        several blue/green swaps — zero failed, zero rejected, every
        accepted request answered (live + retired counters)."""
        with ServingRuntime(deadline_ms=0.5, max_queue=4096) as runtime:
            bridge = LiveSwapBridge(runtime, "live")
            bridge.deploy(_ScaledModel(0.0, delay_s=0.002))
            errors: list[Exception] = []
            served = [0]
            stop = threading.Event()

            def hammer(worker: int) -> None:
                i = 0
                while not stop.is_set():
                    try:
                        block = runtime.forecast("live", np.array([worker * 1000 + i]))
                        assert block.shape == (1, 2, 3)
                        served[0] += 1  # GIL-atomic int bump
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)
                        return
                    i += 1

            threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
            for thread in threads:
                thread.start()
            for generation in range(1, 6):
                time.sleep(0.05)
                bridge.deploy(_ScaledModel(float(generation), delay_s=0.002))
            time.sleep(0.05)
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors, f"request dropped/errored across a swap: {errors[:3]}"
            assert served[0] > 0
            stats = runtime.stats()
            retired = stats["swaps"]["retired"]
            live = stats["totals"]
            assert stats["swaps"]["count"] == 5
            assert retired["failed"] == 0 and live["failed"] == 0
            assert retired["rejected"] == 0 and live["rejected"] == 0
            total_submitted = retired["submitted"] + live["submitted"]
            total_completed = retired["completed"] + live["completed"]
            assert total_submitted == total_completed == served[0]
