"""FeedReplayer: deterministic clocked replay of dataset rows."""

from __future__ import annotations

import math
import time

import pytest

from repro.streaming import FeedReplayer, StreamBuffer


class TestInstantReplay:
    def test_infinite_speedup_delivers_everything_at_once(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        replayer = FeedReplayer(feed_dataset, buffer, speedup=math.inf)
        delivered = replayer.run()
        assert delivered == feed_dataset.num_steps
        assert buffer.watermark == feed_dataset.num_steps
        assert buffer.stats["appends"] == 1
        assert replayer.done

    def test_content_is_bitwise_the_dataset(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        FeedReplayer(feed_dataset, buffer, speedup=math.inf).run()
        n = feed_dataset.num_steps
        assert buffer.values(0, n).tobytes() == feed_dataset.values.tobytes()

    def test_two_replays_are_bit_identical(self, feed_dataset):
        buffers = []
        for _ in range(2):
            buffer = StreamBuffer(feed_dataset)
            FeedReplayer(feed_dataset, buffer, speedup=math.inf, seed=5).run()
            buffers.append(buffer)
        n = feed_dataset.num_steps
        assert buffers[0].values(0, n).tobytes() == buffers[1].values(0, n).tobytes()

    def test_subrange_replay(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        replayer = FeedReplayer(
            feed_dataset, buffer, speedup=math.inf, start_step=10, stop_step=30
        )
        assert replayer.run() == 20
        assert buffer.values(0, 20).tobytes() == feed_dataset.values[10:30].tobytes()


class TestClockedReplay:
    def test_finite_speedup_delivers_in_order(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        # 1 ms real gap per row over 30 rows: fast, but genuinely clocked.
        replayer = FeedReplayer(
            feed_dataset, buffer, speedup=1.0, interval_s=0.001, stop_step=30
        )
        assert replayer.run() == 30
        assert buffer.values(0, 30).tobytes() == feed_dataset.values[:30].tobytes()
        stats = replayer.stats
        assert stats["done"] and stats["elapsed_s"] >= 0.02

    def test_jitter_is_seeded_and_content_preserving(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        replayer = FeedReplayer(
            feed_dataset, buffer, speedup=1.0, interval_s=0.001,
            stop_step=20, seed=11, jitter=0.5,
        )
        assert replayer.run() == 20
        assert buffer.values(0, 20).tobytes() == feed_dataset.values[:20].tobytes()

    def test_stop_interrupts_a_slow_replay(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        replayer = FeedReplayer(feed_dataset, buffer, speedup=1.0, interval_s=30.0)
        replayer.start()
        time.sleep(0.05)
        replayer.stop()
        replayer.join(timeout=5.0)
        assert replayer.done
        assert replayer.delivered < feed_dataset.num_steps

    def test_start_twice_rejected(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        replayer = FeedReplayer(feed_dataset, buffer, speedup=1.0, interval_s=30.0)
        replayer.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                replayer.start()
        finally:
            replayer.stop()
            replayer.join(timeout=5.0)


class TestValidation:
    def test_bad_speedup(self, feed_dataset):
        with pytest.raises(ValueError, match="speedup"):
            FeedReplayer(feed_dataset, StreamBuffer(feed_dataset), speedup=0.0)

    def test_bad_jitter(self, feed_dataset):
        with pytest.raises(ValueError, match="jitter"):
            FeedReplayer(feed_dataset, StreamBuffer(feed_dataset), jitter=1.0)

    def test_bad_range(self, feed_dataset):
        with pytest.raises(ValueError, match="replay range"):
            FeedReplayer(
                feed_dataset, StreamBuffer(feed_dataset),
                start_step=50, stop_step=40,
            )
        with pytest.raises(ValueError, match="replay range"):
            FeedReplayer(
                feed_dataset, StreamBuffer(feed_dataset),
                stop_step=feed_dataset.num_steps + 1,
            )
