"""StreamBuffer: watermark accounting, retention, dataset views."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.streaming import StreamBuffer


class TestAppend:
    def test_single_rows_advance_watermark(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        assert buffer.watermark == 0
        assert buffer.append(feed_dataset.values[0]) == 1
        assert buffer.append(feed_dataset.values[1]) == 2
        assert buffer.watermark == 2
        assert buffer.base == 0

    def test_block_append_is_one_arrival_event(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        buffer.append(feed_dataset.values[:5], arrival_time=42.0)
        assert buffer.watermark == 5
        assert buffer.stats["appends"] == 1
        assert np.all(buffer.arrival_times(0, 5) == 42.0)

    def test_content_is_bitwise_what_arrived(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        buffer.append(feed_dataset.values[:20])
        assert buffer.values(0, 20).tobytes() == feed_dataset.values[:20].tobytes()

    def test_wrong_width_rejected(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        with pytest.raises(ValueError, match="locations"):
            buffer.append(np.zeros(feed_dataset.num_locations + 1))
        with pytest.raises(ValueError, match="locations"):
            buffer.append(np.zeros((2, 3, 4)))


class TestRetention:
    def test_eviction_keeps_indices_absolute(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset, max_steps=10)
        buffer.append(feed_dataset.values[:25])
        assert buffer.watermark == 25
        assert buffer.base == 15
        assert buffer.stats["rows_retained"] == 10
        # Absolute indexing: step 20 is still row 20 of the source feed.
        assert buffer.values(20, 21).tobytes() == feed_dataset.values[20:21].tobytes()

    def test_reads_below_base_raise(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset, max_steps=5)
        buffer.append(feed_dataset.values[:12])
        with pytest.raises(IndexError, match="retention base"):
            buffer.values(0, 5)

    def test_reads_beyond_watermark_raise(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        buffer.append(feed_dataset.values[:3])
        with pytest.raises(IndexError, match="watermark"):
            buffer.values(0, 4)
        with pytest.raises(IndexError, match="empty"):
            buffer.values(2, 2)

    def test_max_steps_validated(self, feed_dataset):
        with pytest.raises(ValueError, match="max_steps"):
            StreamBuffer(feed_dataset, max_steps=0)


class TestWatermarkWait:
    def test_wait_returns_immediately_when_reached(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        buffer.append(feed_dataset.values[:4])
        assert buffer.wait_for_watermark(4, timeout=0.0)

    def test_wait_times_out(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        assert not buffer.wait_for_watermark(1, timeout=0.01)

    def test_wait_wakes_on_cross_thread_append(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)

        def feed():
            buffer.append(feed_dataset.values[:6])

        thread = threading.Thread(target=feed)
        thread.start()
        assert buffer.wait_for_watermark(6, timeout=5.0)
        thread.join()


class TestDatasetView:
    def test_view_carries_geometry_and_window(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        buffer.append(feed_dataset.values[:40])
        view = buffer.dataset_view(10, 40)
        assert view.num_steps == 30
        assert view.num_locations == feed_dataset.num_locations
        assert view.steps_per_day == feed_dataset.steps_per_day
        assert view.values.tobytes() == feed_dataset.values[10:40].tobytes()
        assert view.metadata["stream_window"] == [10, 40]
        assert np.array_equal(view.coords, feed_dataset.coords)

    def test_view_never_exposes_unarrived_rows(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        buffer.append(feed_dataset.values[:8])
        with pytest.raises(IndexError):
            buffer.dataset_view(0, 9)

    def test_stats_shape(self, feed_dataset):
        buffer = StreamBuffer(feed_dataset)
        buffer.append(feed_dataset.values[:7])
        stats = buffer.stats
        assert stats["watermark"] == 7
        assert stats["base"] == 0
        assert stats["bytes_retained"] == 7 * feed_dataset.num_locations * 8
