"""Cross-window warm starts: checkpoint-dir and state-dict paths agree.

Satellite coverage for the PR 2 checkpoint plumbing this subsystem
leans on: a checkpoint persisted while fitting window ``k`` must seed a
fit on window ``k+1`` — via ``warm_start_dir`` (``Trainer.restore``) —
bitwise identically to a fresh fit handed the same weights as an
in-memory state dict (``warm_start_state``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import STSMForecaster
from repro.engine import EarlyStopping


def _windows(feed_dataset):
    window_k = feed_dataset.subset_steps(np.arange(0, 64), name_suffix="w0")
    window_k1 = feed_dataset.subset_steps(np.arange(32, 96), name_suffix="w1")
    return window_k, window_k1


def _state_bytes(model):
    return {k: v.tobytes() for k, v in model.network.state_dict().items()}


class TestCrossWindowWarmStart:
    def test_dir_and_state_paths_are_bitwise_equal(
        self, feed_dataset, feed_split, feed_spec, feed_config, tmp_path
    ):
        window_k, window_k1 = _windows(feed_dataset)
        steps = np.arange(window_k.num_steps)
        checkpoint = tmp_path / "window-k"
        STSMForecaster(feed_config).fit(
            window_k, feed_split, feed_spec, steps, checkpoint_dir=checkpoint
        )

        via_dir = STSMForecaster(feed_config)
        report = via_dir.fit(
            window_k1, feed_split, feed_spec, steps, warm_start_dir=checkpoint
        )
        assert report.extra["warm_started"]

        state, _metadata = EarlyStopping.load_checkpoint(checkpoint)
        via_state = STSMForecaster(feed_config)
        via_state.fit(
            window_k1, feed_split, feed_spec, steps, warm_start_state=state
        )
        assert via_state.warm_started

        assert _state_bytes(via_dir) == _state_bytes(via_state)
        starts = np.arange(0, window_k1.num_steps - feed_spec.total + 1, 8)
        assert via_dir.predict(starts).tobytes() == via_state.predict(starts).tobytes()

    def test_warm_start_actually_changes_the_trajectory(
        self, feed_dataset, feed_split, feed_spec, feed_config, tmp_path
    ):
        window_k, window_k1 = _windows(feed_dataset)
        steps = np.arange(window_k.num_steps)
        checkpoint = tmp_path / "window-k"
        STSMForecaster(feed_config).fit(
            window_k, feed_split, feed_spec, steps, checkpoint_dir=checkpoint
        )
        warm = STSMForecaster(feed_config)
        warm.fit(window_k1, feed_split, feed_spec, steps, warm_start_dir=checkpoint)
        cold = STSMForecaster(feed_config)
        cold.fit(window_k1, feed_split, feed_spec, steps)
        assert _state_bytes(warm) != _state_bytes(cold)

    def test_missing_checkpoint_degrades_to_cold_start(
        self, feed_dataset, feed_split, feed_spec, feed_config, tmp_path
    ):
        _window_k, window_k1 = _windows(feed_dataset)
        steps = np.arange(window_k1.num_steps)
        degraded = STSMForecaster(feed_config)
        report = degraded.fit(
            window_k1, feed_split, feed_spec, steps,
            warm_start_dir=tmp_path / "nothing-here",
        )
        assert not report.extra["warm_started"]
        cold = STSMForecaster(feed_config)
        cold.fit(window_k1, feed_split, feed_spec, steps)
        assert _state_bytes(degraded) == _state_bytes(cold)

    def test_both_warm_sources_rejected(
        self, feed_dataset, feed_split, feed_spec, feed_config, tmp_path
    ):
        _window_k, window_k1 = _windows(feed_dataset)
        with pytest.raises(ValueError, match="not both"):
            STSMForecaster(feed_config).fit(
                window_k1, feed_split, feed_spec,
                np.arange(window_k1.num_steps),
                warm_start_dir=tmp_path, warm_start_state={},
            )
