"""RefitScheduler: trigger semantics, warm-start chain, bitwise parity.

The parity tests are this PR's acceptance gate: after two rolling
refits — warm-started from checkpoint *directories* with the shared
artifact store on — every refit's weights and served outputs must be
bitwise identical to a from-scratch fit of the same window that loads
the same warm weights as an in-memory state dict with all cross-fit
caches disabled.  Warm starts and store reuse are accelerations, not
approximations.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine import ArtifactStore
from repro.serving import ForecastService
from repro.streaming import (
    FeedReplayer,
    RefitPolicy,
    RefitScheduler,
    StreamBuffer,
    fit_reference,
)

POLICY = RefitPolicy(window_steps=64, refit_every=32, refit_epochs=1, max_refits=2)


def _filled_buffer(feed_dataset, stop_step=96):
    buffer = StreamBuffer(feed_dataset)
    FeedReplayer(feed_dataset, buffer, speedup=math.inf, stop_step=stop_step).run()
    return buffer


def _run_all(scheduler):
    models = []
    while scheduler.run_once(timeout=0) is not None:
        models.append(scheduler.model)
    return models


class TestPolicy:
    def test_trigger_and_window_math(self):
        assert POLICY.trigger_watermark(0) == 64
        assert POLICY.trigger_watermark(1) == 96
        assert POLICY.window(0) == (0, 64)
        assert POLICY.window(1) == (32, 96)

    def test_validation(self):
        with pytest.raises(ValueError, match="window_steps"):
            RefitPolicy(window_steps=0, refit_every=1, refit_epochs=1)
        with pytest.raises(ValueError, match="refit_every"):
            RefitPolicy(window_steps=8, refit_every=0, refit_epochs=1)
        with pytest.raises(ValueError, match="refit_epochs"):
            RefitPolicy(window_steps=8, refit_every=1, refit_epochs=0)

    def test_window_must_fit_a_training_window(
        self, feed_dataset, feed_split, feed_spec, feed_config, tmp_path
    ):
        tight = RefitPolicy(window_steps=16, refit_every=8, refit_epochs=1)
        with pytest.raises(ValueError, match="window_steps"):
            RefitScheduler(
                StreamBuffer(feed_dataset), feed_config, feed_split,
                feed_spec, tight, tmp_path,
            )


class TestTriggers:
    def test_schedule_runs_to_max_refits(
        self, feed_dataset, feed_split, feed_spec, feed_config, tmp_path
    ):
        buffer = _filled_buffer(feed_dataset)
        scheduler = RefitScheduler(
            buffer, feed_config, feed_split, feed_spec, POLICY, tmp_path
        )
        assert scheduler.next_trigger() == 64
        assert scheduler.pending()
        models = _run_all(scheduler)
        assert len(models) == 2
        assert scheduler.next_trigger() is None
        assert not scheduler.pending()
        assert scheduler.run_once(timeout=0) is None
        assert [(r.window_start, r.window_end) for r in scheduler.records] == [
            (0, 64), (32, 96),
        ]

    def test_run_once_times_out_without_data(
        self, feed_dataset, feed_split, feed_spec, feed_config, tmp_path
    ):
        scheduler = RefitScheduler(
            StreamBuffer(feed_dataset), feed_config, feed_split,
            feed_spec, POLICY, tmp_path,
        )
        assert scheduler.run_once(timeout=0.01) is None
        assert scheduler.completed == 0

    def test_refits_chain_warm_starts_and_checkpoints(
        self, feed_dataset, feed_split, feed_spec, feed_config, tmp_path
    ):
        buffer = _filled_buffer(feed_dataset)
        scheduler = RefitScheduler(
            buffer, feed_config, feed_split, feed_spec, POLICY, tmp_path
        )
        _run_all(scheduler)
        first, second = scheduler.records
        # No external checkpoint: refit 0 is cold, refit 1 warm-starts
        # from refit 0's best-epoch directory.
        assert not first.warm_started
        assert second.warm_started
        assert (tmp_path / "window-0" / "best.npz").exists()
        assert (tmp_path / "window-1" / "best.npz").exists()
        assert scheduler.warm_source(1) == tmp_path / "window-0"
        stats = scheduler.stats
        assert stats["completed"] == 2
        assert [r["window"] for r in stats["refits"]] == [[0, 64], [32, 96]]
        assert all(r["fit_lag_seconds"] >= 0 for r in stats["refits"])


class TestBitwiseParity:
    def test_two_rolling_refits_match_from_scratch_bitwise(
        self, feed_dataset, feed_split, feed_spec, feed_config, tmp_path
    ):
        buffer = _filled_buffer(feed_dataset)
        scheduler = RefitScheduler(
            buffer, feed_config, feed_split, feed_spec, POLICY,
            tmp_path, store=ArtifactStore(),
        )
        models = _run_all(scheduler)
        assert len(models) == 2 and scheduler.records[1].warm_started
        starts = np.arange(0, POLICY.window_steps - feed_spec.total + 1, 8)
        for index, model in enumerate(models):
            reference = fit_reference(scheduler, index)
            state = model.network.state_dict()
            ref_state = reference.network.state_dict()
            assert set(state) == set(ref_state)
            for name in state:
                assert state[name].tobytes() == ref_state[name].tobytes(), (
                    f"refit {index}: parameter {name} drifted"
                )
            assert model.predict(starts).tobytes() == reference.predict(starts).tobytes()

    def test_served_bytes_replay_through_the_reference(
        self, feed_dataset, feed_split, feed_spec, feed_config, tmp_path
    ):
        """Every byte served for the live model is a direct-predict byte
        of the from-scratch reference (batch-log replay, the
        composition-exact certification from the serving benchmarks)."""
        buffer = _filled_buffer(feed_dataset)
        store = ArtifactStore()
        scheduler = RefitScheduler(
            buffer, feed_config, feed_split, feed_spec, POLICY,
            tmp_path, store=store,
        )
        models = _run_all(scheduler)
        service = ForecastService(models[-1], log_batches=True)
        starts = np.arange(0, POLICY.window_steps - feed_spec.total + 1, 4)
        served = service.forecast(starts)
        reference = fit_reference(scheduler, len(models) - 1)
        replayed: dict[int, bytes] = {}
        for batch in service.batch_log:
            blocks = reference.predict(np.asarray(batch))
            for start, block in zip(batch, blocks):
                replayed[int(start)] = block.tobytes()
        for start, block in zip(starts, served):
            assert block.tobytes() == replayed[int(start)], (
                f"served window {start} is not a reference predict block"
            )
