"""Shared fixtures: small deterministic datasets and splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import WindowSpec, space_split
from repro.data.synthetic import make_airq, make_melbourne, make_pems_bay


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_traffic():
    """A 24-sensor, 3-day highway dataset — small enough for training tests."""
    return make_pems_bay(num_sensors=24, num_days=3, seed=7)


@pytest.fixture(scope="session")
def tiny_urban():
    """A 20-sensor, 3-day urban dataset."""
    return make_melbourne(num_sensors=20, num_days=3, seed=8)


@pytest.fixture(scope="session")
def tiny_airq():
    """A 16-station, 12-day air-quality dataset."""
    return make_airq(num_sensors=16, num_days=12, seed=9)


@pytest.fixture(scope="session")
def tiny_split(tiny_traffic):
    return space_split(tiny_traffic.coords, "horizontal")


@pytest.fixture(scope="session")
def tiny_spec():
    return WindowSpec(input_length=8, horizon=8)
