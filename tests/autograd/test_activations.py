"""New activation ops: leaky_relu, elu, gelu, softplus.

Each op gets a value check against its definition and a finite-difference
gradient check, plus hypothesis sweeps over random shapes.  Inputs are
nudged away from the kink points so central differences are valid.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients, elu, gelu, leaky_relu, softplus


def _smooth_input(seed: int, shape=(3, 4)) -> Tensor:
    """Random values kept away from 0 (the ReLU-family kink)."""
    data = np.random.default_rng(seed).normal(size=shape)
    data = np.where(np.abs(data) < 0.05, 0.1, data)
    return Tensor(data, requires_grad=True)


class TestLeakyReLU:
    def test_values(self):
        x = Tensor(np.array([-2.0, 0.0, 3.0]))
        out = leaky_relu(x, negative_slope=0.1).numpy()
        assert np.allclose(out, [-0.2, 0.0, 3.0])

    def test_positive_side_identity(self):
        x = Tensor(np.array([1.5, 7.0]))
        assert np.allclose(leaky_relu(x).numpy(), [1.5, 7.0])

    def test_gradient(self):
        check_gradients(lambda a: leaky_relu(a, 0.2), [_smooth_input(0)])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), slope=st.floats(0.01, 0.9))
    def test_gradient_property(self, seed, slope):
        check_gradients(lambda a: leaky_relu(a, slope), [_smooth_input(seed)])


class TestELU:
    def test_values(self):
        x = Tensor(np.array([-1.0, 2.0]))
        out = elu(x, alpha=1.0).numpy()
        assert out[0] == pytest.approx(np.exp(-1.0) - 1.0)
        assert out[1] == 2.0

    def test_continuous_at_zero(self):
        left = elu(Tensor(np.array([-1e-9]))).numpy()[0]
        right = elu(Tensor(np.array([1e-9]))).numpy()[0]
        assert abs(left - right) < 1e-8

    def test_gradient(self):
        check_gradients(lambda a: elu(a, alpha=0.7), [_smooth_input(1)])

    def test_no_overflow_for_large_negatives(self):
        out = elu(Tensor(np.array([-1e4]))).numpy()
        assert np.isfinite(out[0]) and out[0] == pytest.approx(-1.0)


class TestGELU:
    def test_values_match_reference(self):
        # Reference values of the tanh-approximated GELU.
        x = Tensor(np.array([0.0, 1.0, -1.0]))
        out = gelu(x).numpy()
        assert out[0] == 0.0
        assert out[1] == pytest.approx(0.8412, abs=1e-3)
        assert out[2] == pytest.approx(-0.1588, abs=1e-3)

    def test_asymptotes(self):
        out = gelu(Tensor(np.array([30.0, -30.0]))).numpy()
        assert out[0] == pytest.approx(30.0)
        assert out[1] == pytest.approx(0.0, abs=1e-6)

    def test_gradient(self):
        check_gradients(gelu, [_smooth_input(2)])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_gradient_property(self, seed):
        check_gradients(gelu, [_smooth_input(seed, shape=(2, 3))])


class TestSoftplus:
    def test_values(self):
        x = Tensor(np.array([0.0]))
        assert softplus(x).numpy()[0] == pytest.approx(np.log(2.0))

    def test_approaches_relu_for_large_beta(self):
        x = Tensor(np.array([-2.0, 2.0]))
        out = softplus(x, beta=50.0).numpy()
        assert out[0] == pytest.approx(0.0, abs=1e-3)
        assert out[1] == pytest.approx(2.0, abs=1e-3)

    def test_stable_for_extreme_inputs(self):
        out = softplus(Tensor(np.array([-1e4, 1e4]))).numpy()
        assert np.all(np.isfinite(out))
        assert out[1] == pytest.approx(1e4)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError, match="beta"):
            softplus(Tensor(np.zeros(2)), beta=0.0)

    def test_gradient(self):
        check_gradients(lambda a: softplus(a, beta=1.5), [_smooth_input(3)])

    def test_output_always_positive(self):
        x = Tensor(np.linspace(-5, 5, 21))
        assert np.all(softplus(x).numpy() > 0)
