"""Gradient correctness for every elementwise/matmul/reduction op.

Each test composes the op into a scalar via ``sum`` and compares the
autograd gradient against central finite differences.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, no_grad


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def _t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestElementwise:
    def test_add(self, rng):
        check_gradients(lambda a, b: a + b, [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_add_broadcast(self, rng):
        check_gradients(lambda a, b: a + b, [_t(rng, 3, 4), _t(rng, 4)])

    def test_add_broadcast_middle(self, rng):
        check_gradients(lambda a, b: a + b, [_t(rng, 2, 3, 4), _t(rng, 2, 1, 4)])

    def test_sub(self, rng):
        check_gradients(lambda a, b: a - b, [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_rsub_scalar(self, rng):
        check_gradients(lambda a: 2.0 - a, [_t(rng, 3)])

    def test_mul(self, rng):
        check_gradients(lambda a, b: a * b, [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_mul_broadcast(self, rng):
        check_gradients(lambda a, b: a * b, [_t(rng, 2, 3, 4), _t(rng, 1, 3, 1)])

    def test_div(self, rng):
        a = _t(rng, 3, 4)
        b = Tensor(rng.uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        check_gradients(lambda x, y: x / y, [a, b])

    def test_neg(self, rng):
        check_gradients(lambda a: -a, [_t(rng, 5)])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        check_gradients(lambda x: x ** 3, [a])

    def test_pow_tensor_exponent_rejected(self, rng):
        with pytest.raises(TypeError):
            _t(rng, 2) ** _t(rng, 2)


class TestTranscendental:
    def test_exp(self, rng):
        check_gradients(lambda a: a.exp(), [_t(rng, 3, 4)])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=(3, 4)), requires_grad=True)
        check_gradients(lambda x: x.log(), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        check_gradients(lambda x: x.sqrt(), [a])

    def test_abs(self, rng):
        a = Tensor(rng.normal(size=(3, 4)) + 0.1, requires_grad=True)
        check_gradients(lambda x: x.abs(), [a])

    def test_sigmoid(self, rng):
        check_gradients(lambda a: a.sigmoid(), [_t(rng, 3, 4)])

    def test_tanh(self, rng):
        check_gradients(lambda a: a.tanh(), [_t(rng, 3, 4)])

    def test_relu(self, rng):
        a = Tensor(rng.normal(size=(3, 4)) + 0.05, requires_grad=True)
        check_gradients(lambda x: x.relu(), [a])


class TestMatmul:
    def test_2d(self, rng):
        check_gradients(lambda a, b: a @ b, [_t(rng, 3, 4), _t(rng, 4, 5)])

    def test_batched(self, rng):
        check_gradients(lambda a, b: a @ b, [_t(rng, 2, 3, 4), _t(rng, 2, 4, 5)])

    def test_broadcast_left(self, rng):
        # (N, N) @ (B, N, C): the adjacency-times-features pattern of the GCN.
        check_gradients(lambda a, b: a @ b, [_t(rng, 4, 4), _t(rng, 2, 4, 3)])

    def test_broadcast_left_4d(self, rng):
        check_gradients(lambda a, b: a @ b, [_t(rng, 4, 4), _t(rng, 2, 3, 4, 2)])

    def test_vector_vector(self, rng):
        check_gradients(lambda a, b: a @ b, [_t(rng, 5), _t(rng, 5)])

    def test_matrix_vector(self, rng):
        check_gradients(lambda a, b: a @ b, [_t(rng, 3, 5), _t(rng, 5)])


class TestReductions:
    def test_sum_all(self, rng):
        check_gradients(lambda a: a.sum(), [_t(rng, 3, 4)])

    def test_sum_axis(self, rng):
        check_gradients(lambda a: a.sum(axis=1), [_t(rng, 3, 4)])

    def test_sum_axis_keepdims(self, rng):
        check_gradients(lambda a: a.sum(axis=0, keepdims=True), [_t(rng, 3, 4)])

    def test_sum_tuple_axis(self, rng):
        check_gradients(lambda a: a.sum(axis=(0, 2)), [_t(rng, 2, 3, 4)])

    def test_mean(self, rng):
        check_gradients(lambda a: a.mean(), [_t(rng, 3, 4)])

    def test_mean_axis(self, rng):
        check_gradients(lambda a: a.mean(axis=-1, keepdims=True), [_t(rng, 3, 4)])

    def test_max_all(self, rng):
        check_gradients(lambda a: a.max(), [_t(rng, 3, 4)])

    def test_max_axis(self, rng):
        check_gradients(lambda a: a.max(axis=1), [_t(rng, 3, 4)])

    def test_min_axis(self, rng):
        check_gradients(lambda a: a.min(axis=0), [_t(rng, 3, 4)])

    def test_max_gradient_splits_ties(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestShape:
    def test_reshape(self, rng):
        check_gradients(lambda a: a.reshape(4, 3), [_t(rng, 3, 4)])

    def test_reshape_tuple(self, rng):
        check_gradients(lambda a: a.reshape((2, 6)), [_t(rng, 3, 4)])

    def test_transpose_default(self, rng):
        check_gradients(lambda a: a.transpose(), [_t(rng, 3, 4)])

    def test_transpose_axes(self, rng):
        check_gradients(lambda a: a.transpose(1, 2, 0), [_t(rng, 2, 3, 4)])

    def test_swapaxes(self, rng):
        check_gradients(lambda a: a.swapaxes(0, 2), [_t(rng, 2, 3, 4)])

    def test_getitem_slice(self, rng):
        check_gradients(lambda a: a[1:, :2], [_t(rng, 3, 4)])

    def test_getitem_fancy(self, rng):
        idx = np.array([0, 2, 2])
        check_gradients(lambda a: a[idx], [_t(rng, 3, 4)])

    def test_getitem_fancy_accumulates_duplicates(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([1, 1, 2])
        a[idx].sum().backward()
        assert np.allclose(a.grad, [0.0, 2.0, 1.0])

    def test_squeeze_unsqueeze(self, rng):
        check_gradients(lambda a: a.unsqueeze(1).squeeze(1), [_t(rng, 3, 4)])


class TestBackwardMechanics:
    def test_backward_requires_scalar_or_grad(self, rng):
        t = _t(rng, 3)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_gradient_accumulates_across_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * a + a).sum().backward()  # d/da (a^2 + a) = 2a + 1 = 5
        assert np.allclose(a.grad, [5.0])

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2.0
        c = a + 1.0
        (b * c).sum().backward()  # d/da (2a * (a+1)) = 4a + 2 = 14
        assert np.allclose(a.grad, [14.0])

    def test_no_grad_suppresses_taping(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_no_grad_is_thread_local(self):
        """A serving thread inside ``no_grad()`` must not stop another
        thread from taping — the streaming subsystem trains a refit
        while the previous model serves in the same process."""
        entered = threading.Event()
        release = threading.Event()

        def serve() -> None:
            with no_grad():
                entered.set()
                release.wait(timeout=10.0)

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            assert entered.wait(timeout=10.0)
            a = Tensor(np.ones(3), requires_grad=True)
            (a * 2.0).sum().backward()
            assert np.allclose(a.grad, [2.0, 2.0, 2.0])
        finally:
            release.set()
            thread.join(timeout=10.0)

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a.detach() * 2.0).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 3.0).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64

    def test_item_and_len(self):
        assert Tensor([2.5]).item() == 2.5
        assert len(Tensor(np.zeros((4, 2)))) == 4
