"""Gradient checks for the GAT attention softmax (broadcast-heavy path).

The attention logits are built by broadcasting a source column ``(N, 1)``
against a transposed destination row ``(1, N)``, masking non-edges with a
large negative offset and softmax-normalising each row — a composition
(broadcast add -> leaky_relu -> masked softmax -> matmul) that no other
gradient test exercised.  ``check_gradients`` takes the backend as a
parameter, so the same finite-difference certification runs against every
registered backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, leaky_relu, softmax
from repro.backend import use_backend
from repro.nn import GraphAttention, init

BACKENDS = ("numpy_ref", "numpy_fused")


def _attention_pipeline(offsets):
    """The GAT per-head attention as a function of (projected, a_src, a_dst)."""

    def fn(projected: Tensor, attn_src: Tensor, attn_dst: Tensor) -> Tensor:
        src = projected @ attn_src  # (N, 1)
        dst = projected @ attn_dst  # (N, 1)
        logits = leaky_relu(src + dst.transpose(1, 0), 0.2)  # broadcast (N, N)
        weights = softmax(logits + offsets, axis=-1)
        return weights @ projected

    return fn


@pytest.mark.parametrize("backend", BACKENDS)
def test_gat_attention_softmax_gradients(backend):
    rng = np.random.default_rng(0)
    n, dim = 6, 4
    adjacency = (rng.random((n, n)) > 0.4).astype(float)
    with use_backend(backend):
        projected = Tensor(rng.normal(size=(n, dim)), requires_grad=True)
        attn_src = Tensor(rng.normal(size=(dim, 1)), requires_grad=True)
        attn_dst = Tensor(rng.normal(size=(dim, 1)), requires_grad=True)
        mask = adjacency > 0
        np.fill_diagonal(mask, True)
        offsets = Tensor(np.where(mask, 0.0, -1e9))
    check_gradients(
        _attention_pipeline(offsets),
        [projected, attn_src, attn_dst],
        backend=backend,
        atol=1e-4,
        rtol=1e-3,
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_gat_layer_end_to_end_gradients(backend):
    """Full GraphAttention forward (leading batch axis) against FD."""
    rng = np.random.default_rng(1)
    n, dim = 5, 4
    adjacency = (rng.random((n, n)) > 0.5).astype(float)
    with use_backend(backend):
        layer = GraphAttention(dim, dim, num_heads=2, rng=init.default_rng(3))
        features = Tensor(rng.normal(size=(2, n, dim)), requires_grad=True)
    check_gradients(
        lambda feats: layer(adjacency, feats),
        [features],
        backend=backend,
        atol=1e-4,
        rtol=1e-3,
    )
