"""Gradient and behaviour tests for the functional ops (concat, softmax,
conv1d, dropout, ...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    clip_values,
    concatenate,
    conv1d,
    dropout,
    embedding,
    log_softmax,
    maximum,
    minimum,
    pad,
    softmax,
    stack,
    where,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestConcatStack:
    def test_concatenate_axis0(self, rng):
        check_gradients(lambda a, b: concatenate([a, b], axis=0), [_t(rng, 2, 3), _t(rng, 4, 3)])

    def test_concatenate_axis_last(self, rng):
        check_gradients(lambda a, b: concatenate([a, b], axis=-1), [_t(rng, 2, 3), _t(rng, 2, 2)])

    def test_stack(self, rng):
        check_gradients(lambda a, b: stack([a, b], axis=1), [_t(rng, 2, 3), _t(rng, 2, 3)])

    def test_stack_shapes(self, rng):
        out = stack([_t(rng, 2, 3)] * 4, axis=0)
        assert out.shape == (4, 2, 3)


class TestSelection:
    def test_where(self, rng):
        cond = rng.random((3, 4)) > 0.5
        check_gradients(lambda a, b: where(cond, a, b), [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_maximum(self, rng):
        check_gradients(lambda a, b: maximum(a, b), [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_minimum(self, rng):
        check_gradients(lambda a, b: minimum(a, b), [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_maximum_tie_splits_gradient(self):
        a = Tensor(np.ones((2,)), requires_grad=True)
        b = Tensor(np.ones((2,)), requires_grad=True)
        maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [0.5, 0.5])
        assert np.allclose(b.grad, [0.5, 0.5])

    def test_clip_values(self, rng):
        a = Tensor(rng.normal(size=(4, 4)) * 2, requires_grad=True)
        check_gradients(lambda x: clip_values(x, -1.0, 1.0), [a])

    def test_pad(self, rng):
        check_gradients(lambda a: pad(a, ((1, 2), (0, 1))), [_t(rng, 3, 4)])


class TestSoftmax:
    def test_softmax_grad(self, rng):
        check_gradients(lambda a: softmax(a, axis=-1), [_t(rng, 3, 5)])

    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(_t(rng, 3, 5), axis=-1)
        assert np.allclose(out.numpy().sum(axis=-1), 1.0)

    def test_softmax_handles_large_values(self):
        out = softmax(Tensor(np.array([[1000.0, 1000.0]])), axis=-1)
        assert np.allclose(out.numpy(), [[0.5, 0.5]])

    def test_log_softmax_grad(self, rng):
        check_gradients(lambda a: log_softmax(a, axis=1), [_t(rng, 4, 3)])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = _t(rng, 3, 4)
        assert np.allclose(log_softmax(x, axis=-1).numpy(), np.log(softmax(x, axis=-1).numpy()))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = _t(rng, 5, 5)
        out = dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_zero_rate_is_identity(self, rng):
        x = _t(rng, 5, 5)
        out = dropout(x, 0.0, training=True, rng=np.random.default_rng(0))
        assert out is x

    def test_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, training=True, rng=np.random.default_rng(0))
        assert abs(out.numpy().mean() - 1.0) < 0.02

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            dropout(_t(rng, 2), 1.0, training=True, rng=np.random.default_rng(0))

    def test_gradient_respects_mask(self):
        x = Tensor(np.ones((50,)), requires_grad=True)
        out = dropout(x, 0.5, training=True, rng=np.random.default_rng(3))
        out.sum().backward()
        dropped = out.numpy() == 0
        assert np.all(x.grad[dropped] == 0)
        assert np.all(x.grad[~dropped] == 2.0)


class TestEmbedding:
    def test_lookup_values(self, rng):
        table = _t(rng, 6, 3)
        idx = np.array([0, 5, 2])
        out = embedding(table, idx)
        assert np.allclose(out.numpy(), table.numpy()[idx])

    def test_gradient_scatter_adds(self):
        table = Tensor(np.zeros((4, 2)), requires_grad=True)
        embedding(table, np.array([1, 1, 3])).sum().backward()
        assert np.allclose(table.grad, [[0, 0], [2, 2], [0, 0], [1, 1]])


class TestConv1d:
    def test_grad_basic(self, rng):
        check_gradients(
            lambda x, w, b: conv1d(x, w, b),
            [_t(rng, 2, 3, 7), _t(rng, 4, 3, 3), _t(rng, 4)],
        )

    def test_grad_dilated_padded(self, rng):
        check_gradients(
            lambda x, w: conv1d(x, w, dilation=2, padding=2),
            [_t(rng, 2, 2, 9), _t(rng, 3, 2, 3)],
        )

    def test_same_padding_preserves_length(self, rng):
        x = _t(rng, 1, 2, 10)
        w = _t(rng, 2, 2, 3)
        out = conv1d(x, w, padding=1)
        assert out.shape == (1, 2, 10)

    def test_output_length_formula(self, rng):
        out = conv1d(_t(rng, 1, 1, 10), _t(rng, 1, 1, 3), dilation=2, padding=0)
        assert out.shape == (1, 1, 6)  # 10 - (3-1)*2 = 6

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            conv1d(_t(rng, 1, 3, 8), _t(rng, 2, 4, 3))

    def test_too_small_input_rejected(self, rng):
        with pytest.raises(ValueError):
            conv1d(_t(rng, 1, 1, 3), _t(rng, 1, 1, 3), dilation=4)

    def test_matches_manual_convolution(self):
        x = Tensor(np.arange(6, dtype=float).reshape(1, 1, 6))
        w = Tensor(np.array([[[1.0, 0.0, -1.0]]]))
        out = conv1d(x, w).numpy()
        # out[t] = x[t] - x[t+2] = -2 everywhere
        assert np.allclose(out, np.full((1, 1, 4), -2.0))
