"""Property-based gradient checks with hypothesis.

Random shapes and values exercise broadcasting paths and composite graphs
that the unit tests do not enumerate.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients, concatenate, softmax

_dims = st.integers(min_value=1, max_value=4)


@st.composite
def _arrays(draw, *shape_dims):
    shape = tuple(draw(dim) for dim in shape_dims)
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    data = np.random.default_rng(seed).normal(size=shape)
    return Tensor(data, requires_grad=True)


@settings(max_examples=25, deadline=None)
@given(_arrays(_dims, _dims))
def test_sigmoid_tanh_chain(x):
    check_gradients(lambda a: a.sigmoid().tanh(), [x])


@settings(max_examples=25, deadline=None)
@given(_arrays(_dims, _dims), st.integers(min_value=0, max_value=1))
def test_sum_then_mul(x, axis):
    axis = min(axis, x.ndim - 1)
    check_gradients(lambda a: a.sum(axis=axis) * 3.0, [x])


@settings(max_examples=25, deadline=None)
@given(_arrays(_dims, _dims))
def test_softmax_rows_sum_to_one(x):
    out = softmax(x, axis=-1).numpy()
    assert np.allclose(out.sum(axis=-1), 1.0)
    assert np.all(out >= 0)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=2, max_value=5))
def test_matmul_associativity_of_gradients(n, m):
    rng = np.random.default_rng(n * 31 + m)
    a = Tensor(rng.normal(size=(n, m)), requires_grad=True)
    b = Tensor(rng.normal(size=(m, n)), requires_grad=True)
    check_gradients(lambda x, y: (x @ y).tanh(), [a, b])


@settings(max_examples=20, deadline=None)
@given(_arrays(_dims, _dims), _arrays(_dims, _dims))
def test_concatenate_gradient_partitions(a, b):
    if a.shape[1] != b.shape[1]:
        b = Tensor(np.random.default_rng(0).normal(size=(b.shape[0], a.shape[1])), requires_grad=True)
    out = concatenate([a, b], axis=0)
    out.sum().backward()
    assert np.allclose(a.grad, np.ones(a.shape))
    assert np.allclose(b.grad, np.ones(b.shape))


@settings(max_examples=20, deadline=None)
@given(_arrays(_dims, _dims))
def test_linearity_of_backward(x):
    """grad of (2f) should be exactly twice grad of f."""
    x.zero_grad()
    (x * x).sum().backward()
    single = x.grad.copy()
    x.zero_grad()
    ((x * x) * 2.0).sum().backward()
    assert np.allclose(x.grad, 2.0 * single)
