"""Stress tests: composite graphs resembling the real model's structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, concatenate, maximum, softmax


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestCompositeGradients:
    def test_mini_gcn_block(self, rng):
        """adjacency @ X @ W with gating — the GCNL pattern."""
        adjacency = Tensor(rng.random((4, 4)))
        x = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        w1 = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(3, 3)), requires_grad=True)

        def gcnl(x_, w1_, w2_):
            value = adjacency @ x_ @ w1_
            gate = (adjacency @ x_ @ w2_).sigmoid()
            return value * gate

        check_gradients(gcnl, [x, w1, w2], atol=1e-4)

    def test_branch_max_fusion(self, rng):
        """max(branch_a, branch_b) routes gradients to the winner."""
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        wa = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        wb = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        check_gradients(lambda x_, a, b: maximum(x_ @ a, x_ @ b), [x, wa, wb], atol=1e-4)

    def test_residual_tower(self, rng):
        """Stacked residual blocks (x + f(x)) keep gradients exact."""
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(5, 5)) * 0.3, requires_grad=True)

        def tower(x_, w_):
            h = x_
            for _ in range(4):
                h = h + (h @ w_).tanh()
            return h

        check_gradients(tower, [x, w], atol=1e-4)

    def test_attention_pattern(self, rng):
        """softmax(QK^T)V — scaled dot-product attention core."""
        q = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        k = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)

        def attention(q_, k_, v_):
            scores = q_ @ k_.transpose(0, 2, 1) * 0.5
            return softmax(scores, axis=-1) @ v_

        check_gradients(attention, [q, k, v], atol=1e-4)

    def test_contrastive_pattern(self, rng):
        """Normalised similarity matrix + log-softmax diagonal extraction."""
        from repro.nn import nt_xent_loss

        a = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        check_gradients(lambda x, y: nt_xent_loss(x, y), [a, b], atol=1e-4)

    def test_deep_concat_chain(self, rng):
        parts = [Tensor(rng.normal(size=(2, 3)), requires_grad=True) for _ in range(4)]

        def chain(*ps):
            joined = concatenate(list(ps), axis=1)
            return (joined @ joined.transpose()).sum(axis=1)

        check_gradients(chain, parts, atol=1e-4)


class TestGraphMechanics:
    def test_shared_subexpression_counted_once_per_path(self, rng):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = y + y  # two paths through y
        z.sum().backward()
        assert np.allclose(x.grad, [6.0])

    def test_long_chain_no_recursion_error(self):
        x = Tensor(np.ones(2), requires_grad=True)
        h = x
        for _ in range(3000):  # would blow Python's stack if recursive
            h = h + 1.0
        h.sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0])

    def test_grad_accumulates_over_two_backwards(self, rng):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        first = x.grad.copy()
        (x * 2.0).sum().backward()
        assert np.allclose(x.grad, first * 2)

    def test_float32_preserved(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = (x * 2.0).sum()
        assert x.dtype == np.float32
        out.backward()
        assert x.grad.dtype == np.float32
