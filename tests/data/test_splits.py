"""Space and time splitting (paper §5.1.1, §5.2.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SpaceSplit, four_standard_splits, space_split, temporal_split


@pytest.fixture
def coords():
    return np.random.default_rng(0).uniform(0, 100, size=(40, 2))


class TestSpaceSplit:
    def test_partition(self, coords):
        split = space_split(coords, "horizontal")
        split.validate(len(coords))

    def test_fractions(self, coords):
        split = space_split(coords, "horizontal")
        assert len(split.train) == 16  # 0.4 * 40
        assert len(split.validation) == 4
        assert len(split.test) == 20

    def test_horizontal_orders_by_y(self, coords):
        split = space_split(coords, "horizontal")
        assert coords[split.train, 1].max() <= coords[split.test, 1].min() + 1e-9

    def test_flip_reverses(self, coords):
        split = space_split(coords, "horizontal_flip")
        assert coords[split.train, 1].min() >= coords[split.test, 1].max() - 1e-9

    def test_vertical_orders_by_x(self, coords):
        split = space_split(coords, "vertical")
        assert coords[split.train, 0].max() <= coords[split.test, 0].min() + 1e-9

    def test_ring_centre_is_train(self, coords):
        split = space_split(coords, "ring")
        centre = coords.mean(axis=0)
        train_r = np.linalg.norm(coords[split.train] - centre, axis=1).max()
        test_r = np.linalg.norm(coords[split.test] - centre, axis=1).min()
        assert train_r <= test_r + 1e-9

    def test_observed_is_train_plus_validation(self, coords):
        split = space_split(coords, "vertical")
        assert set(split.observed) == set(split.train) | set(split.validation)
        assert set(split.unobserved) == set(split.test)

    def test_unknown_kind_rejected(self, coords):
        with pytest.raises(ValueError):
            space_split(coords, "diagonal")

    def test_bad_fractions_rejected(self, coords):
        with pytest.raises(ValueError):
            space_split(coords, "horizontal", fractions=(0.5, 0.2, 0.2))

    def test_bad_coords_rejected(self):
        with pytest.raises(ValueError):
            space_split(np.zeros(5), "horizontal")

    def test_four_standard_splits(self, coords):
        splits = four_standard_splits(coords)
        assert [s.name for s in splits] == [
            "horizontal", "horizontal_flip", "vertical", "vertical_flip",
        ]
        for s in splits:
            s.validate(len(coords))

    def test_validate_catches_overlap(self):
        bad = SpaceSplit(np.array([0, 1]), np.array([1]), np.array([2]), "bad")
        with pytest.raises(ValueError):
            bad.validate(4)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=10, max_value=60), st.integers(min_value=0, max_value=100))
    def test_partition_property(self, n, seed):
        coords = np.random.default_rng(seed).uniform(size=(n, 2))
        for kind in ("horizontal", "vertical", "ring"):
            split = space_split(coords, kind)
            split.validate(n)
            # The paper's 4:1:5 proportions hold to rounding.
            assert abs(len(split.train) / n - 0.4) < 0.1
            assert abs(len(split.test) / n - 0.5) < 0.1


class TestTemporalSplit:
    def test_70_30(self):
        train, test = temporal_split(100)
        assert len(train) == 70 and len(test) == 30
        assert train[-1] + 1 == test[0]

    def test_contiguous_and_complete(self):
        train, test = temporal_split(53, 0.6)
        joined = np.concatenate([train, test])
        assert np.array_equal(joined, np.arange(53))

    def test_bounds(self):
        train, test = temporal_split(2, 0.99)
        assert len(train) == 1 and len(test) == 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            temporal_split(10, 0.0)
        with pytest.raises(ValueError):
            temporal_split(10, 1.0)


class TestProgressiveSplits:
    def _splits(self, coords, **kwargs):
        from repro.data import progressive_splits

        return progressive_splits(coords, "horizontal", **kwargs)

    def test_every_stage_is_a_partition(self, coords):
        splits, _core = self._splits(coords)
        for split in splits:
            split.validate(len(coords))

    def test_core_never_observed(self, coords):
        splits, core = self._splits(coords)
        for split in splits:
            assert np.intersect1d(split.observed, core).size == 0
            assert np.all(np.isin(core, split.unobserved))

    def test_observed_count_grows_with_stage(self, coords):
        splits, _core = self._splits(coords, stages=(0.0, 0.5, 1.0))
        counts = [len(split.observed) for split in splits]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]

    def test_stage_zero_matches_base_fraction(self, coords):
        splits, _core = self._splits(coords, base_fraction=0.5, stages=(0.0,))
        assert len(splits[0].observed) == 20  # 0.5 * 40

    def test_full_stage_leaves_only_core(self, coords):
        splits, core = self._splits(coords, stages=(1.0,))
        assert np.array_equal(splits[0].unobserved, core)

    def test_deployment_follows_sweep_order(self, coords):
        """Newly deployed sensors are closer to the base than the core."""
        splits, core = self._splits(coords, stages=(0.0, 0.5))
        newly = np.setdiff1d(splits[1].observed, splits[0].observed)
        assert newly.size > 0
        assert coords[newly, 1].max() < coords[core, 1].min()

    def test_rejects_bad_fractions(self, coords):
        with pytest.raises(ValueError, match="corridor"):
            self._splits(coords, base_fraction=0.8, core_fraction=0.3)
        with pytest.raises(ValueError, match="in \\(0, 1\\)"):
            self._splits(coords, base_fraction=0.0)

    def test_rejects_bad_stage(self, coords):
        with pytest.raises(ValueError, match="stage"):
            self._splits(coords, stages=(0.0, 1.5))

    def test_validation_nonempty_every_stage(self, coords):
        splits, _core = self._splits(coords, stages=(0.0, 0.25, 0.75, 1.0))
        for split in splits:
            assert len(split.validation) >= 1
            assert len(split.train) >= 1
