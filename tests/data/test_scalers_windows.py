"""Scaler roundtrips (incl. property-based) and window sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    IdentityScaler,
    MinMaxScaler,
    StandardScaler,
    WindowSpec,
    iterate_batches,
    slice_window,
    window_starts,
)


class TestStandardScaler:
    def test_transforms_to_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        data = rng.normal(50, 10, size=(100, 5))
        out = StandardScaler().fit_transform(data)
        assert abs(out.mean()) < 1e-9
        assert abs(out.std() - 1.0) < 1e-9

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.normal(5, 2, size=(20, 3))
        scaler = StandardScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_constant_data_does_not_divide_by_zero(self):
        scaler = StandardScaler().fit(np.full((10,), 7.0))
        out = scaler.transform(np.full((10,), 7.0))
        assert np.all(np.isfinite(out))

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones(3))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.array([]))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=50), st.integers(min_value=0, max_value=1000))
    def test_roundtrip_property(self, n, seed):
        data = np.random.default_rng(seed).normal(size=n) * 100
        scaler = StandardScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data, atol=1e-8)


class TestMinMaxScaler:
    def test_range(self):
        data = np.array([5.0, 10.0, 15.0])
        out = MinMaxScaler().fit_transform(data)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        data = rng.uniform(-3, 9, size=(8, 2))
        scaler = MinMaxScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_identity_scaler_noop(self):
        data = np.arange(5, dtype=float)
        scaler = IdentityScaler().fit(data)
        assert np.allclose(scaler.fit_transform(data), data)
        assert np.allclose(scaler.inverse_transform(data), data)


class TestWindows:
    def test_spec_total(self):
        assert WindowSpec(12, 6).total == 18

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            WindowSpec(0, 5)
        with pytest.raises(ValueError):
            WindowSpec(5, -1)

    def test_window_starts_count(self):
        spec = WindowSpec(4, 2)
        starts = window_starts(10, spec)
        assert list(starts) == [0, 1, 2, 3, 4]

    def test_window_starts_stride(self):
        spec = WindowSpec(4, 2)
        assert list(window_starts(10, spec, stride=2)) == [0, 2, 4]

    def test_window_starts_too_short(self):
        assert len(window_starts(3, WindowSpec(4, 2))) == 0

    def test_slice_window(self):
        values = np.arange(20).reshape(10, 2)
        x, y = slice_window(values, 1, WindowSpec(3, 2))
        assert x.shape == (3, 2) and y.shape == (2, 2)
        assert x[0, 0] == 2 and y[0, 0] == 8

    def test_slice_out_of_range(self):
        with pytest.raises(IndexError):
            slice_window(np.zeros((5, 1)), 3, WindowSpec(2, 2))

    def test_batches_cover_all(self):
        starts = np.arange(10)
        seen = np.concatenate(list(iterate_batches(starts, 3)))
        assert sorted(seen) == list(range(10))

    def test_batches_shuffled(self):
        starts = np.arange(100)
        batches = list(iterate_batches(starts, 100, rng=np.random.default_rng(0)))
        assert not np.array_equal(batches[0], starts)

    def test_drop_last(self):
        batches = list(iterate_batches(np.arange(10), 4, drop_last=True))
        assert all(len(b) == 4 for b in batches)
        assert len(batches) == 2

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_batches(np.arange(4), 0))
