"""Dataset save/load roundtrip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, save_dataset


class TestDatasetIO:
    def test_roundtrip(self, tiny_traffic, tmp_path):
        path = tmp_path / "traffic.npz"
        save_dataset(tiny_traffic, path)
        restored = load_dataset(path)
        assert restored.name == tiny_traffic.name
        assert restored.steps_per_day == tiny_traffic.steps_per_day
        assert restored.interval_minutes == tiny_traffic.interval_minutes
        assert np.allclose(restored.values, tiny_traffic.values)
        assert np.allclose(restored.coords, tiny_traffic.coords)
        assert np.allclose(restored.features.poi_counts, tiny_traffic.features.poi_counts)
        assert np.allclose(restored.features.road, tiny_traffic.features.road)

    def test_metadata_arrays_roundtrip(self, tiny_traffic, tmp_path):
        path = tmp_path / "traffic.npz"
        save_dataset(tiny_traffic, path)
        restored = load_dataset(path)
        assert restored.metadata["kind"] == "traffic"
        assert np.allclose(restored.metadata["land_use"], tiny_traffic.metadata["land_use"])

    def test_road_network_not_serialised(self, tiny_traffic, tmp_path):
        path = tmp_path / "traffic.npz"
        save_dataset(tiny_traffic, path)
        assert load_dataset(path).road_network is None

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, whatever=np.zeros(2))
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_restored_dataset_usable_for_training(self, tiny_traffic, tmp_path):
        from repro.baselines import HistoricalAverageForecaster
        from repro.data import WindowSpec, space_split, temporal_split
        from repro.evaluation import evaluate_forecaster

        path = tmp_path / "traffic.npz"
        save_dataset(tiny_traffic, path)
        restored = load_dataset(path)
        split = space_split(restored.coords, "horizontal")
        result = evaluate_forecaster(
            HistoricalAverageForecaster(), restored, split, WindowSpec(8, 8),
            max_test_windows=4,
        )
        assert result.metrics.rmse > 0
