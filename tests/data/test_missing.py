"""Missing-at-times masks and imputers (paper Fig. 1(a) setting)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.missing import (
    apply_missing,
    block_missing_mask,
    impute_forward_fill,
    impute_linear,
    missing_rate,
    random_missing_mask,
)


@pytest.fixture
def rng():
    return np.random.default_rng(61)


class TestMasks:
    def test_random_mask_rate(self, rng):
        mask = random_missing_mask((1000, 10), 0.3, rng)
        assert mask.mean() == pytest.approx(0.3, abs=0.03)

    def test_zero_rate_empty(self, rng):
        assert not random_missing_mask((50, 4), 0.0, rng).any()

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            random_missing_mask((10, 2), 1.0, rng)
        with pytest.raises(ValueError):
            block_missing_mask((10, 2), -0.1, rng)

    def test_block_mask_rate_approx(self, rng):
        mask = block_missing_mask((500, 8), 0.25, rng, mean_block=10)
        assert 0.1 < mask.mean() < 0.45

    def test_block_mask_is_blocky(self, rng):
        """Contiguous outages: masked cells cluster in time vs random."""
        shape = (400, 6)
        blocky = block_missing_mask(shape, 0.3, rng, mean_block=20)
        scattered = random_missing_mask(shape, 0.3, np.random.default_rng(62))

        def transitions(mask):
            return int((mask[1:] != mask[:-1]).sum())

        assert transitions(blocky) < transitions(scattered)

    def test_apply_missing(self, rng):
        values = np.ones((5, 3))
        mask = np.zeros((5, 3), dtype=bool)
        mask[0, 0] = True
        out = apply_missing(values, mask)
        assert np.isnan(out[0, 0])
        assert out[1, 1] == 1.0
        assert values[0, 0] == 1.0  # original untouched

    def test_apply_missing_shape_check(self):
        with pytest.raises(ValueError):
            apply_missing(np.ones((3, 2)), np.zeros((2, 2), dtype=bool))

    def test_missing_rate(self):
        values = np.array([[1.0, np.nan], [np.nan, np.nan]])
        assert missing_rate(values) == pytest.approx(0.75)
        assert missing_rate(np.array([])) == 0.0


class TestImputers:
    def test_forward_fill_carries_last(self):
        values = np.array([[1.0], [np.nan], [np.nan], [4.0]])
        out = impute_forward_fill(values)
        assert np.allclose(out.ravel(), [1.0, 1.0, 1.0, 4.0])

    def test_forward_fill_leading_gap(self):
        values = np.array([[np.nan], [2.0], [np.nan]])
        out = impute_forward_fill(values)
        assert np.allclose(out.ravel(), [2.0, 2.0, 2.0])

    def test_forward_fill_all_missing_column(self):
        values = np.array([[np.nan, 3.0], [np.nan, 5.0]])
        out = impute_forward_fill(values)
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(4.0)  # global mean

    def test_linear_interpolates(self):
        values = np.array([[0.0], [np.nan], [np.nan], [3.0]])
        out = impute_linear(values)
        assert np.allclose(out.ravel(), [0.0, 1.0, 2.0, 3.0])

    def test_linear_extends_edges(self):
        values = np.array([[np.nan], [2.0], [np.nan]])
        out = impute_linear(values)
        assert np.allclose(out.ravel(), [2.0, 2.0, 2.0])

    def test_linear_recovers_smooth_signal_better_than_ffill(self, rng):
        t = np.linspace(0, 4 * np.pi, 200)
        truth = np.sin(t)[:, None] * np.ones((1, 3))
        mask = random_missing_mask(truth.shape, 0.4, rng)
        holey = apply_missing(truth, mask)
        linear_err = np.abs(impute_linear(holey) - truth).mean()
        ffill_err = np.abs(impute_forward_fill(holey) - truth).mean()
        assert linear_err < ffill_err

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=5, max_value=60), st.integers(min_value=0, max_value=500))
    def test_imputers_leave_observed_untouched(self, steps, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(steps, 3))
        mask = random_missing_mask(values.shape, 0.3, rng)
        holey = apply_missing(values, mask)
        for imputer in (impute_forward_fill, impute_linear):
            out = imputer(holey)
            assert np.all(np.isfinite(out))
            assert np.allclose(out[~mask], values[~mask])
