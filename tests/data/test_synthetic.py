"""Synthetic data generators: structure, realism properties, presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import LocationFeatures, SpatioTemporalDataset
from repro.data.synthetic import (
    DATASET_MAKERS,
    LAND_USES,
    NUM_POI_CATEGORIES,
    POI_CATEGORIES,
    diurnal_demand,
    generate_highway_city,
    generate_urban_city,
    land_use_mixture,
    make_dataset,
    poi_intensity,
    sample_poi_counts,
    simulate_pm25,
)


class TestPOI:
    def test_26_categories(self):
        assert NUM_POI_CATEGORIES == 26
        assert len(POI_CATEGORIES) == 26

    def test_intensity_shape_and_nonneg(self):
        rng = np.random.default_rng(0)
        mixture = rng.dirichlet(np.ones(len(LAND_USES)), size=10)
        intensity = poi_intensity(mixture)
        assert intensity.shape == (10, 26)
        assert np.all(intensity >= 0)

    def test_commercial_has_more_offices_than_rural(self):
        commercial = np.zeros((1, 5)); commercial[0, 0] = 1.0
        rural = np.zeros((1, 5)); rural[0, 4] = 1.0
        office_idx = POI_CATEGORIES.index("office")
        assert poi_intensity(commercial)[0, office_idx] > poi_intensity(rural)[0, office_idx]

    def test_radius_scales_area(self):
        mixture = np.ones((1, 5)) / 5
        small = poi_intensity(mixture, radius=250.0)
        large = poi_intensity(mixture, radius=500.0)
        assert np.allclose(large, small * 4.0)

    def test_counts_are_integers(self):
        rng = np.random.default_rng(1)
        mixture = rng.dirichlet(np.ones(5), size=4)
        counts = sample_poi_counts(mixture, rng)
        assert np.allclose(counts, counts.round())

    def test_bad_mixture_shape_rejected(self):
        with pytest.raises(ValueError):
            poi_intensity(np.ones((3, 4)))


class TestCityGeneration:
    def test_highway_layout_fields(self):
        rng = np.random.default_rng(2)
        layout = generate_highway_city(30, rng)
        assert layout.sensor_coords.shape == (30, 2)
        assert layout.road_features.shape == (30, 4)
        assert layout.poi_counts.shape == (30, 26)
        assert layout.land_use.shape == (30, 5)
        assert np.allclose(layout.land_use.sum(axis=1), 1.0)

    def test_highway_network_connected(self):
        import networkx as nx

        rng = np.random.default_rng(3)
        layout = generate_highway_city(40, rng)
        assert nx.is_connected(layout.road_network.graph)

    def test_urban_layout_fields(self):
        rng = np.random.default_rng(4)
        layout = generate_urban_city(25, rng)
        assert layout.sensor_coords.shape == (25, 2)
        assert np.all(layout.road_features[:, 1] > 0)  # positive speed limits

    def test_too_few_sensors_rejected(self):
        with pytest.raises(ValueError):
            generate_highway_city(1, np.random.default_rng(0))

    def test_land_use_mixture_rows_normalised(self):
        rng = np.random.default_rng(5)
        coords = rng.uniform(0, 100, size=(10, 2))
        centres = rng.uniform(0, 100, size=(3, 2))
        mixture = land_use_mixture(coords, centres, rng)
        assert np.allclose(mixture.sum(axis=1), 1.0)
        assert np.all(mixture >= 0)


class TestTrafficSimulation:
    def test_demand_peaks_on_weekdays(self):
        n = 4
        demand = diurnal_demand(24, 7, np.ones(n), np.ones(n))
        weekday = demand[:24]
        # 8am (index 8) should beat 3am (index 3) on a weekday.
        assert weekday[8].mean() > weekday[3].mean()

    def test_weekend_flatter_than_weekday(self):
        demand = diurnal_demand(24, 7, np.full(3, 1.5), np.full(3, 1.5))
        weekday_peak = demand[:24].max()
        weekend_peak = demand[5 * 24 : 6 * 24].max()
        assert weekend_peak < weekday_peak

    def test_peak_hours_shift_with_parameters(self):
        demand = diurnal_demand(
            48, 1, np.ones(2), np.ones(2),
            am_hour=np.array([6.0, 10.0]), pm_hour=np.array([17.0, 17.0]),
        )
        early_peak = demand[: 24, 0].argmax()
        late_peak = demand[: 24, 1].argmax()
        assert early_peak < late_peak

    def test_speeds_bounded_by_road_class(self, tiny_traffic):
        values = tiny_traffic.values
        maxspeed = tiny_traffic.features.road[:, 1]
        assert np.all(values <= maxspeed[None, :] * 1.05 + 1e-9)
        assert values.min() >= 2.0

    def test_diurnal_autocorrelation(self, tiny_traffic):
        """Speeds one day apart should correlate strongly (periodicity)."""
        spd = tiny_traffic.steps_per_day
        values = tiny_traffic.values
        day0, day1 = values[:spd], values[spd : 2 * spd]
        corr = np.corrcoef(day0.ravel(), day1.ravel())[0, 1]
        assert corr > 0.5

    def test_spatial_correlation_decays(self, tiny_traffic):
        """Nearby sensors correlate more than far-apart ones."""
        from repro.graph import euclidean_distance_matrix

        values = tiny_traffic.values
        distances = euclidean_distance_matrix(tiny_traffic.coords)
        corr = np.corrcoef(values.T)
        n = len(corr)
        triu = np.triu_indices(n, k=1)
        near = distances[triu] < np.median(distances[triu])
        assert corr[triu][near].mean() > corr[triu][~near].mean()


class TestAirQuality:
    def test_values_positive_and_bounded(self, tiny_airq):
        assert tiny_airq.values.min() >= 2.0
        assert tiny_airq.values.max() <= 900.0

    def test_regional_correlation(self, tiny_airq):
        """Smog episodes are regional: mean pairwise correlation is high."""
        corr = np.corrcoef(tiny_airq.values.T)
        triu = np.triu_indices(len(corr), k=1)
        assert corr[triu].mean() > 0.3

    def test_pm25_simulator_shapes(self):
        rng = np.random.default_rng(6)
        coords = rng.uniform(0, 10_000, size=(8, 2))
        mixture = rng.dirichlet(np.ones(5), size=8)
        out = simulate_pm25(coords, mixture, steps_per_day=24, num_days=5, rng=rng)
        assert out.shape == (120, 8)


class TestCatalog:
    def test_all_presets_buildable_small(self):
        for key in DATASET_MAKERS:
            dataset = make_dataset(key, num_sensors=12, num_days=2)
            assert dataset.num_locations == 12
            assert dataset.num_steps == dataset.steps_per_day * 2

    def test_intervals_match_table2(self):
        assert make_dataset("pems-bay", num_sensors=8, num_days=1).steps_per_day == 288
        assert make_dataset("melbourne", num_sensors=8, num_days=1).steps_per_day == 96
        assert make_dataset("airq", num_sensors=8, num_days=2).steps_per_day == 24

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            make_dataset("metr-la")

    def test_deterministic_under_seed(self):
        a = make_dataset("pems-bay", num_sensors=10, num_days=1, seed=42)
        b = make_dataset("pems-bay", num_sensors=10, num_days=1, seed=42)
        assert np.allclose(a.values, b.values)
        assert np.allclose(a.coords, b.coords)

    def test_airq_two_clusters(self):
        dataset = make_dataset("airq", num_sensors=20, num_days=2)
        x = dataset.coords[:, 0]
        # Bimodal x-coordinates: a wide gap between the two cities.
        assert x.max() - x.min() > 50_000


class TestDatasetContainer:
    def test_describe_fields(self, tiny_traffic):
        info = tiny_traffic.describe()
        assert info["sensors"] == tiny_traffic.num_locations
        assert info["steps"] == tiny_traffic.num_steps

    def test_subset_locations(self, tiny_traffic):
        subset = tiny_traffic.subset_locations(np.arange(5))
        assert subset.num_locations == 5
        assert subset.values.shape[1] == 5
        assert len(subset.features) == 5

    def test_subset_steps(self, tiny_traffic):
        subset = tiny_traffic.subset_steps(np.arange(10))
        assert subset.num_steps == 10
        assert subset.num_locations == tiny_traffic.num_locations

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SpatioTemporalDataset(
                name="bad",
                values=np.zeros((5, 3)),
                coords=np.zeros((4, 2)),  # mismatch
                steps_per_day=24,
                features=LocationFeatures(
                    poi_counts=np.zeros((3, 26)), scale=np.zeros(3), road=np.zeros((3, 4))
                ),
            )

    def test_feature_embedding_dim(self, tiny_traffic):
        emb = tiny_traffic.features.embedding_matrix()
        assert emb.shape == (tiny_traffic.num_locations, 31)  # 26 + 1 + 4

    def test_feature_shape_validation(self):
        with pytest.raises(ValueError):
            LocationFeatures(poi_counts=np.zeros((3, 5)), scale=np.zeros(3), road=np.zeros((3, 4)))
