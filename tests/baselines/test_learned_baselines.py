"""GE-GAN, IGNNK, INCREASE: components and end-to-end behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines import (
    DiffusionGCN,
    GEGANForecaster,
    IGNNKForecaster,
    IGNNKNetwork,
    INCREASEForecaster,
    INCREASENetwork,
    most_similar_nodes,
    spectral_embedding,
)
from repro.baselines.ignnk import _transition_matrices
from repro.data import temporal_split
from repro.evaluation import forecast_window_starts


@pytest.fixture(scope="module")
def traffic():
    from repro.data.synthetic import make_pems_bay

    return make_pems_bay(num_sensors=20, num_days=3, seed=13)


@pytest.fixture(scope="module")
def split(traffic):
    from repro.data import space_split

    return space_split(traffic.coords, "horizontal")


@pytest.fixture(scope="module")
def spec():
    from repro.data import WindowSpec

    return WindowSpec(input_length=6, horizon=6)


class TestSpectralEmbedding:
    def test_shape(self):
        adj = np.ones((6, 6)) - np.eye(6)
        emb = spectral_embedding(adj, dim=3)
        assert emb.shape == (6, 3)

    def test_dim_clipped(self):
        adj = np.ones((3, 3)) - np.eye(3)
        emb = spectral_embedding(adj, dim=10)
        assert emb.shape == (3, 2)

    def test_communities_cluster(self):
        # Two cliques joined by one edge: embeddings within a clique are
        # closer than across cliques.
        adj = np.zeros((6, 6))
        adj[:3, :3] = 1
        adj[3:, 3:] = 1
        np.fill_diagonal(adj, 0)
        adj[2, 3] = adj[3, 2] = 1
        emb = spectral_embedding(adj, dim=2)
        within = np.linalg.norm(emb[0] - emb[1])
        across = np.linalg.norm(emb[0] - emb[4])
        assert within < across

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            spectral_embedding(np.zeros((1, 1)))

    def test_most_similar_excludes_target(self):
        emb = np.arange(10, dtype=float)[:, None]
        out = most_similar_nodes(emb, 5, np.arange(10), k=3)
        assert 5 not in out
        assert set(out) == {4, 6, 3} or set(out) == {4, 6, 7}

    def test_most_similar_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            most_similar_nodes(np.zeros((3, 2)), 0, np.array([0]), k=1)


class TestIGNNKComponents:
    def test_transition_matrices_stochastic(self):
        adj = np.array([[0.0, 2.0], [1.0, 0.0]])
        forward, backward = _transition_matrices(adj)
        assert np.allclose(forward.sum(axis=1), 1.0)
        assert np.allclose(backward.sum(axis=1), 1.0)

    def test_dgcn_shape(self):
        layer = DiffusionGCN(6, 4, diffusion_steps=2)
        adj = np.random.default_rng(0).random((5, 5))
        forward, backward = _transition_matrices(adj)
        out = layer(Tensor(forward), Tensor(backward), Tensor(np.random.default_rng(1).normal(size=(2, 5, 6))))
        assert out.shape == (2, 5, 4)

    def test_dgcn_parameters_registered(self):
        layer = DiffusionGCN(3, 3, diffusion_steps=3)
        names = [name for name, _p in layer.named_parameters()]
        assert len([n for n in names if n.startswith("wf")]) == 3
        assert len([n for n in names if n.startswith("wb")]) == 3

    def test_network_maps_window_to_horizon(self):
        net = IGNNKNetwork(input_length=6, horizon=4, hidden=8)
        adj = np.random.default_rng(0).random((5, 5))
        forward, backward = _transition_matrices(adj)
        out = net(Tensor(forward), Tensor(backward), Tensor(np.zeros((2, 5, 6))))
        assert out.shape == (2, 5, 4)


class TestIGNNKEndToEnd:
    def test_fit_predict(self, traffic, split, spec):
        model = IGNNKForecaster(iterations=30, hidden=12)
        train_ix, _ = temporal_split(traffic.num_steps)
        report = model.fit(traffic, split, spec, train_ix)
        assert report.epochs == 30
        starts = forecast_window_starts(traffic, spec, max_windows=4)
        out = model.predict(starts)
        assert out.shape == (4, spec.horizon, len(split.unobserved))
        assert np.all(np.isfinite(out))

    def test_loss_decreases(self, traffic, split, spec):
        model = IGNNKForecaster(iterations=60, hidden=12)
        train_ix, _ = temporal_split(traffic.num_steps)
        report = model.fit(traffic, split, spec, train_ix)
        assert np.mean(report.history[-10:]) < np.mean(report.history[:10])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            IGNNKForecaster().predict(np.array([0]))


class TestINCREASEEndToEnd:
    def test_network_shapes(self):
        net = INCREASENetwork(num_relations=2, horizon=5, hidden=8)
        inputs = [Tensor(np.random.default_rng(i).normal(size=(3, 6, 1))) for i in range(2)]
        out = net(inputs)
        assert out.shape == (3, 5)

    def test_fit_predict(self, traffic, split, spec):
        model = INCREASEForecaster(iterations=30, hidden=12)
        train_ix, _ = temporal_split(traffic.num_steps)
        model.fit(traffic, split, spec, train_ix)
        starts = forecast_window_starts(traffic, spec, max_windows=3)
        out = model.predict(starts)
        assert out.shape == (3, spec.horizon, len(split.unobserved))

    def test_relation_scores_cover_both_relations(self, traffic, split, spec):
        model = INCREASEForecaster(iterations=1)
        train_ix, _ = temporal_split(traffic.num_steps)
        model.fit(traffic, split, spec, train_ix)
        assert len(model._scores) == 2
        for scores in model._scores:
            assert scores.shape == (traffic.num_locations, traffic.num_locations)

    def test_loss_decreases(self, traffic, split, spec):
        model = INCREASEForecaster(iterations=60, hidden=12)
        train_ix, _ = temporal_split(traffic.num_steps)
        report = model.fit(traffic, split, spec, train_ix)
        assert np.mean(report.history[-10:]) < np.mean(report.history[:10])


class TestGEGANEndToEnd:
    def test_fit_predict(self, traffic, split, spec):
        model = GEGANForecaster(iterations=40, hidden=24)
        train_ix, _ = temporal_split(traffic.num_steps)
        model.fit(traffic, split, spec, train_ix)
        starts = forecast_window_starts(traffic, spec, max_windows=3)
        out = model.predict(starts)
        assert out.shape == (3, spec.horizon, len(split.unobserved))
        assert np.all(np.isfinite(out))

    def test_similar_locations_are_observed(self, traffic, split, spec):
        model = GEGANForecaster(iterations=1)
        train_ix, _ = temporal_split(traffic.num_steps)
        model.fit(traffic, split, spec, train_ix)
        for node, sims in model._similar.items():
            assert set(sims) <= set(split.observed)
            assert node not in sims

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GEGANForecaster().predict(np.array([0]))
