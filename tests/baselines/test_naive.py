"""Naive reference forecasters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    HistoricalAverageForecaster,
    IDWPersistenceForecaster,
    NearestObservedForecaster,
)
from repro.data import temporal_split
from repro.evaluation import evaluate_forecaster, forecast_window_starts


@pytest.mark.parametrize(
    "forecaster_cls",
    [HistoricalAverageForecaster, NearestObservedForecaster, IDWPersistenceForecaster],
)
class TestNaiveForecasters:
    def test_shapes(self, forecaster_cls, tiny_traffic, tiny_split, tiny_spec):
        model = forecaster_cls()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=5)
        out = model.predict(starts)
        assert out.shape == (len(starts), tiny_spec.horizon, len(tiny_split.unobserved))
        assert np.all(np.isfinite(out))

    def test_reasonable_errors(self, forecaster_cls, tiny_traffic, tiny_split, tiny_spec):
        result = evaluate_forecaster(
            forecaster_cls(), tiny_traffic, tiny_split, tiny_spec, max_test_windows=8
        )
        # Sanity band: errors should be non-trivial but far from divergent.
        assert 0 < result.metrics.rmse < tiny_traffic.values.std() * 5


class TestHistoricalAverageSemantics:
    def test_prediction_follows_time_of_day(self, tiny_traffic, tiny_split, tiny_spec):
        model = HistoricalAverageForecaster()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        spd = tiny_traffic.steps_per_day
        # Two windows 12 hours apart should produce different predictions.
        start_night = spd * 2  # midnight of day 3
        start_rush = spd * 2 + spd // 3  # ~8am of day 3
        night = model.predict(np.array([start_night]))
        rush = model.predict(np.array([start_rush]))
        assert not np.allclose(night, rush)

    def test_all_unobserved_share_profile(self, tiny_traffic, tiny_split, tiny_spec):
        model = HistoricalAverageForecaster()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        out = model.predict(np.array([0]))
        assert np.allclose(out[0, :, 0], out[0, :, -1])


class TestNearestObservedSemantics:
    def test_copies_nearest_sensor(self, tiny_traffic, tiny_split, tiny_spec):
        model = NearestObservedForecaster()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        start = 0
        out = model.predict(np.array([start]))
        last_step = start + tiny_spec.input_length - 1
        expected = tiny_traffic.values[last_step, model.nearest[0]]
        assert out[0, 0, 0] == pytest.approx(expected)

    def test_nearest_is_observed(self, tiny_traffic, tiny_split, tiny_spec):
        model = NearestObservedForecaster()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        assert set(model.nearest) <= set(tiny_split.observed)


class TestIDWPersistenceSemantics:
    def test_weights_are_stochastic(self, tiny_traffic, tiny_split, tiny_spec):
        model = IDWPersistenceForecaster()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        assert np.allclose(model.weights.sum(axis=1), 1.0)

    def test_constant_over_horizon(self, tiny_traffic, tiny_split, tiny_spec):
        model = IDWPersistenceForecaster()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        out = model.predict(np.array([3]))
        assert np.allclose(out[0, 0], out[0, -1])
