"""Classical baselines: GP kriging and graph-regularised completion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    GPKrigingForecaster,
    MatrixCompletionForecaster,
    als_graph_completion,
    gaussian_covariance,
    graph_laplacian,
    loo_lengthscale_search,
    ordinary_kriging_weights,
)
from repro.data import temporal_split
from repro.evaluation import evaluate_forecaster, forecast_window_starts
from repro.graph import euclidean_distance_matrix


class TestGaussianCovariance:
    def test_diagonal_carries_nugget(self):
        distances = euclidean_distance_matrix(np.array([[0.0, 0.0], [3.0, 4.0]]))
        cov = gaussian_covariance(distances, lengthscale=5.0, nugget=0.1)
        assert np.allclose(np.diag(cov), 1.1)

    def test_decreases_with_distance(self):
        distances = np.array([[0.0, 1.0, 10.0], [1.0, 0.0, 9.0], [10.0, 9.0, 0.0]])
        cov = gaussian_covariance(distances, lengthscale=3.0)
        assert cov[0, 1] > cov[0, 2]

    def test_rectangular_block_gets_no_nugget(self):
        distances = np.zeros((2, 3))
        cov = gaussian_covariance(distances, lengthscale=1.0, nugget=0.5)
        assert np.allclose(cov, 1.0)

    def test_rejects_bad_lengthscale(self):
        with pytest.raises(ValueError, match="lengthscale"):
            gaussian_covariance(np.zeros((2, 2)), lengthscale=0.0)


class TestOrdinaryKrigingWeights:
    def _setup(self, coords_o, coords_u, lengthscale=10.0, nugget=1e-3):
        all_coords = np.vstack([coords_o, coords_u])
        distances = euclidean_distance_matrix(all_coords)
        n_o = len(coords_o)
        cov_oo = gaussian_covariance(distances[:n_o, :n_o], lengthscale, nugget)
        cov_uo = gaussian_covariance(distances[n_o:, :n_o], lengthscale)
        return ordinary_kriging_weights(cov_oo, cov_uo)

    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(0)
        weights, _ = self._setup(rng.uniform(0, 100, (8, 2)), rng.uniform(0, 100, (3, 2)))
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_constant_field_reproduced_exactly(self):
        """Unbiasedness: a constant field is predicted without error."""
        rng = np.random.default_rng(1)
        weights, _ = self._setup(rng.uniform(0, 50, (6, 2)), rng.uniform(0, 50, (4, 2)))
        constant = np.full(6, 7.5)
        assert np.allclose(weights @ constant, 7.5)

    def test_target_on_sensor_concentrates_weight(self):
        coords_o = np.array([[0.0, 0.0], [50.0, 0.0], [0.0, 50.0], [50.0, 50.0]])
        coords_u = coords_o[:1]  # coincides with sensor 0
        weights, variance = self._setup(coords_o, coords_u, lengthscale=20.0)
        assert weights[0, 0] > 0.9
        assert variance[0] < 0.05

    def test_variance_grows_with_distance(self):
        coords_o = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        near = np.array([[1.0, 1.0]])
        far = np.array([[200.0, 200.0]])
        _, var_near = self._setup(coords_o, near, lengthscale=15.0)
        _, var_far = self._setup(coords_o, far, lengthscale=15.0)
        assert var_far[0] > var_near[0]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_weight_rows_always_sum_to_one(self, seed):
        rng = np.random.default_rng(seed)
        n_o = int(rng.integers(3, 10))
        n_u = int(rng.integers(1, 5))
        weights, variance = self._setup(
            rng.uniform(0, 100, (n_o, 2)),
            rng.uniform(0, 100, (n_u, 2)),
            lengthscale=float(rng.uniform(5.0, 80.0)),
            nugget=1e-2,
        )
        assert np.allclose(weights.sum(axis=1), 1.0, atol=1e-6)
        assert np.all(variance >= 0.0)


class TestLengthscaleSearch:
    def test_picks_smooth_scale_for_smooth_field(self):
        rng = np.random.default_rng(2)
        coords = rng.uniform(0, 100, (12, 2))
        # A very smooth field: linear in the coordinates.
        rows = np.stack([coords @ w for w in rng.normal(size=(6, 2))])
        rows = (rows - rows.mean()) / rows.std()
        chosen = loo_lengthscale_search(coords, rows, np.array([2.0, 80.0]))
        assert chosen == 80.0

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="candidate"):
            loo_lengthscale_search(np.zeros((3, 2)), np.zeros((2, 3)), np.array([]))


class TestGPKrigingForecaster:
    def test_fit_predict_shapes(self, tiny_traffic, tiny_split, tiny_spec):
        model = GPKrigingForecaster()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        report = model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        assert report.train_seconds > 0
        assert report.extra["lengthscale"] > 0
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=4)
        out = model.predict(starts)
        assert out.shape == (len(starts), tiny_spec.horizon, len(tiny_split.unobserved))
        assert np.all(np.isfinite(out))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            GPKrigingForecaster().predict(np.array([0]))

    def test_rejects_bad_level_decay(self):
        with pytest.raises(ValueError, match="level_decay"):
            GPKrigingForecaster(level_decay=1.5)

    def test_variance_output(self, tiny_traffic, tiny_split, tiny_spec):
        model = GPKrigingForecaster()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        _, variance = model.predict_with_variance(np.array([0]))
        assert variance.shape == (len(tiny_split.unobserved),)
        assert np.all(variance >= 0)

    def test_error_in_sane_band(self, tiny_traffic, tiny_split, tiny_spec):
        result = evaluate_forecaster(
            GPKrigingForecaster(), tiny_traffic, tiny_split, tiny_spec, max_test_windows=8
        )
        assert 0 < result.metrics.rmse < tiny_traffic.values.std() * 5

    def test_predictions_follow_time_of_day(self, tiny_traffic, tiny_split, tiny_spec):
        model = GPKrigingForecaster(level_decay=0.0)
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        spd = tiny_traffic.steps_per_day
        night = model.predict(np.array([0]))
        rush = model.predict(np.array([spd // 3]))
        assert not np.allclose(night, rush)


class TestGraphLaplacian:
    def test_rows_sum_to_zero(self):
        adjacency = np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=float)
        laplacian = graph_laplacian(adjacency)
        assert np.allclose(laplacian.sum(axis=1), 0.0)

    def test_self_loops_dropped(self):
        adjacency = np.eye(3) + np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]], dtype=float)
        laplacian = graph_laplacian(adjacency)
        assert laplacian[2, 2] == 0.0  # isolated node, only a self-loop

    def test_positive_semidefinite(self):
        rng = np.random.default_rng(3)
        raw = rng.random((6, 6)) < 0.4
        adjacency = np.triu(raw, 1).astype(float)
        adjacency = adjacency + adjacency.T
        eigenvalues = np.linalg.eigvalsh(graph_laplacian(adjacency))
        assert eigenvalues.min() > -1e-9


class TestALSCompletion:
    def _low_rank(self, seed=0, num_steps=60, num_locations=12, rank=2):
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 100, (num_locations, 2))
        # Location factors vary smoothly in space so the Laplacian helps.
        factors_v = np.stack(
            [np.sin(coords[:, 0] / 40.0), np.cos(coords[:, 1] / 40.0)], axis=1
        )[:, :rank]
        factors_u = rng.normal(size=(num_steps, rank))
        values = factors_u @ factors_v.T
        distances = euclidean_distance_matrix(coords)
        sigma = distances.std()
        adjacency = (np.exp(-(distances ** 2) / sigma ** 2) > 0.5).astype(float)
        np.fill_diagonal(adjacency, 0.0)
        return values, adjacency

    def test_fully_observed_reconstruction(self):
        values, adjacency = self._low_rank()
        mask = np.ones_like(values, dtype=bool)
        u, v, history = als_graph_completion(
            values, mask, graph_laplacian(adjacency), rank=4,
            ridge=1e-3, graph_weight=0.0, iterations=25,
        )
        rmse = np.sqrt(((values - u @ v.T) ** 2).mean())
        assert rmse < 0.05 * values.std()
        assert history[-1] <= history[0] * 1.1 + 1e-9  # non-divergent

    def test_graph_term_helps_unobserved_columns(self):
        values, adjacency = self._low_rank(seed=5)
        mask = np.ones_like(values, dtype=bool)
        hidden = np.array([2, 7, 9])
        mask[:, hidden] = False
        laplacian = graph_laplacian(adjacency)

        def column_rmse(graph_weight):
            u, v, _ = als_graph_completion(
                values, mask, laplacian, rank=2, ridge=1e-2,
                graph_weight=graph_weight, iterations=30, seed=1,
            )
            return np.sqrt(((values[:, hidden] - (u @ v.T)[:, hidden]) ** 2).mean())

        assert column_rmse(graph_weight=3.0) < column_rmse(graph_weight=0.0)

    def test_rejects_bad_rank(self):
        values = np.zeros((4, 3))
        with pytest.raises(ValueError, match="rank"):
            als_graph_completion(
                values, np.ones_like(values, dtype=bool), np.zeros((3, 3)), rank=0
            )

    def test_rejects_mismatched_mask(self):
        with pytest.raises(ValueError, match="mask"):
            als_graph_completion(
                np.zeros((4, 3)), np.ones((4, 2), dtype=bool), np.zeros((3, 3)), rank=1
            )


class TestMatrixCompletionForecaster:
    def test_fit_predict_shapes(self, tiny_traffic, tiny_split, tiny_spec):
        model = MatrixCompletionForecaster(rank=4, iterations=8)
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        report = model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        assert report.epochs == 8
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=4)
        out = model.predict(starts)
        assert out.shape == (len(starts), tiny_spec.horizon, len(tiny_split.unobserved))
        assert np.all(np.isfinite(out))

    def test_reconstruct_covers_full_matrix(self, tiny_traffic, tiny_split, tiny_spec):
        model = MatrixCompletionForecaster(rank=3, iterations=5)
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        completed = model.reconstruct()
        assert completed.shape == tiny_traffic.values.shape
        assert np.all(np.isfinite(completed))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            MatrixCompletionForecaster().predict(np.array([0]))
        with pytest.raises(RuntimeError, match="before fit"):
            MatrixCompletionForecaster().reconstruct()

    def test_error_in_sane_band(self, tiny_traffic, tiny_split, tiny_spec):
        result = evaluate_forecaster(
            MatrixCompletionForecaster(rank=4, iterations=10),
            tiny_traffic, tiny_split, tiny_spec, max_test_windows=8,
        )
        assert 0 < result.metrics.rmse < tiny_traffic.values.std() * 5

    def test_ar_coefficients_bounded(self, tiny_traffic, tiny_split, tiny_spec):
        model = MatrixCompletionForecaster(rank=3, iterations=5, ar_weight=0.9)
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        assert np.all(np.abs(model.phi) <= 0.9 + 1e-12)


class TestDeterminism:
    """Same seed → identical predictions (reproducible runs)."""

    def test_kriging_deterministic(self, tiny_traffic, tiny_split, tiny_spec):
        import numpy as np
        from repro.data import temporal_split

        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        outputs = []
        for _ in range(2):
            model = GPKrigingForecaster(seed=11)
            model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
            outputs.append(model.predict(np.array([0, 5])))
        assert np.array_equal(outputs[0], outputs[1])

    def test_completion_deterministic(self, tiny_traffic, tiny_split, tiny_spec):
        import numpy as np
        from repro.data import temporal_split

        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        outputs = []
        for _ in range(2):
            model = MatrixCompletionForecaster(rank=3, iterations=4, seed=11)
            model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
            outputs.append(model.predict(np.array([0, 5])))
        assert np.array_equal(outputs[0], outputs[1])
