"""Table 5 with serving telemetry: cache-hit / coalesce columns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.reporting import service_columns
from repro.experiments.table5_timing import run as run_table5


class TestServiceColumns:
    def test_columns_from_stats(self):
        stats = {
            "requests": 200,
            "predict_calls": 4,
            "windows_computed": 100,
            "cache_hits": 90,
            "coalesced": 10,
        }
        cols = service_columns(stats)
        assert cols["Requests"] == 200
        assert cols["CacheHit%"] == pytest.approx(45.0)
        assert cols["Coalesced"] == 10
        assert cols["PredCalls"] == 4
        assert cols["Win/Call"] == pytest.approx(25.0)

    def test_empty_stats_do_not_divide_by_zero(self):
        cols = service_columns({})
        assert cols["CacheHit%"] == 0.0
        assert cols["Win/Call"] == 0.0


class TestTable5WithService:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table5(
            scale_name="bench", datasets=["pems-bay"], models=["STSM"], use_service=True
        )

    def test_rows_carry_service_columns(self, result):
        row = result["rows"][0]
        for column in ("Requests", "CacheHit%", "Coalesced", "PredCalls", "Win/Call", "Warm(s)"):
            assert column in row, column
        assert "_service" in row

    def test_repeated_traffic_hits_cache(self, result):
        row = result["rows"][0]
        stats = row["_service"]
        # 3 timing repeats over the same window set: repeats 2 and 3 are
        # answered from the result cache.
        assert stats["requests"] == 3 * stats["windows_computed"]
        assert stats["cache_hits"] == 2 * stats["windows_computed"]
        assert row["CacheHit%"] == pytest.approx(100.0 * 2 / 3, abs=0.1)
        # Warm repeats skip the model entirely, so they are far cheaper.
        assert row["Warm(s)"] <= row["Test(s)"]

    def test_text_table_includes_serving_columns(self, result):
        assert "CacheHit%" in result["text"]

    def test_without_service_keeps_plain_columns(self):
        result = run_table5(scale_name="bench", datasets=["pems-bay"], models=["IDW"])
        row = result["rows"][0]
        assert "CacheHit%" not in row
        assert "_service" not in row
