"""Experiment registry, scales, reporting, and shared runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import WindowSpec
from repro.experiments import (
    BASELINE_NAMES,
    EXPERIMENTS,
    STSM_NAMES,
    build_dataset,
    build_model,
    format_table,
    get_scale,
    improvement_percent,
    ratio_split,
    run_experiment,
)


class TestScales:
    def test_known_scales(self):
        for name in ("small", "paper", "bench"):
            scale = get_scale(name)
            assert scale.name == name

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_window_specs_match_paper_structure(self):
        paper = get_scale("paper")
        assert paper.window_spec("pems-bay") == WindowSpec(24, 24)  # 2 h at 5 min
        assert paper.window_spec("melbourne") == WindowSpec(8, 8)  # 2 h at 15 min
        assert paper.window_spec("airq") == WindowSpec(24, 24)  # 24 h at 1 h

    def test_paper_scale_uses_four_splits(self):
        assert len(get_scale("paper").split_kinds) == 4

    def test_dataset_size_fallback(self):
        paper = get_scale("paper")
        assert paper.dataset_size("pems-bay") == (None, None)
        bench = get_scale("bench")
        sensors, days = bench.dataset_size("pems-bay")
        assert sensors is not None and days is not None


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table2_stats", "table4_overall", "table5_timing", "table6_sensors",
            "table7_density", "table8_simgain", "table9_ring", "table10_trans",
            "table11_distance", "fig7_adjacency", "fig8_ratio", "fig9_k",
            "fig10_eps", "ablation_dtw", "ablation_pseudo",
        }
        assert expected <= set(EXPERIMENTS)

    def test_extension_experiments_registered(self):
        extensions = {
            "ext_multiregion", "ext_missingness", "ext_classical",
            "ext_uncertainty", "ext_progressive", "ext_horizon",
            "ext_robustness", "ablation_spatial", "ablation_temporal",
        }
        assert extensions <= set(EXPERIMENTS)

    def test_naive_and_classical_models_buildable(self):
        scale = get_scale("bench")
        for name in ("GP-Kriging", "MatrixCompletion", "HistoricalAverage",
                     "NearestObserved", "IDW"):
            model = build_model(name, "pems-bay", scale)
            assert hasattr(model, "fit") and hasattr(model, "predict")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")


class TestBuilders:
    def test_build_dataset_bench_size(self):
        scale = get_scale("bench")
        dataset = build_dataset("pems-bay", scale)
        assert dataset.num_locations == scale.dataset_size("pems-bay")[0]

    def test_build_dataset_override(self):
        scale = get_scale("bench")
        dataset = build_dataset("pems-bay", scale, num_sensors=10, num_days=1)
        assert dataset.num_locations == 10

    def test_build_model_names(self):
        scale = get_scale("bench")
        for name in BASELINE_NAMES + STSM_NAMES:
            model = build_model(name, "pems-bay", scale)
            assert model.name == name

    def test_build_model_caps_top_k(self):
        scale = get_scale("small")
        model = build_model("STSM", "pems-bay", scale, num_observed=8)
        assert model.config.top_k <= 8

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("DCRNN", "pems-bay", get_scale("bench"))

    def test_stsm_overrides_forwarded(self):
        scale = get_scale("bench")
        model = build_model("STSM", "pems-bay", scale, epsilon_sg=0.77)
        assert model.config.epsilon_sg == 0.77


class TestRatioSplit:
    def test_ratio_respected(self):
        coords = np.random.default_rng(0).uniform(size=(40, 2))
        split = ratio_split(coords, "horizontal", 0.3)
        assert len(split.test) == pytest.approx(12, abs=1)
        split.validate(40)

    def test_observed_keeps_4_to_1(self):
        coords = np.random.default_rng(1).uniform(size=(50, 2))
        split = ratio_split(coords, "vertical", 0.5)
        assert len(split.train) / len(split.validation) == pytest.approx(4.0, rel=0.3)

    def test_invalid_ratio_rejected(self):
        coords = np.zeros((10, 2))
        with pytest.raises(ValueError):
            ratio_split(coords, "horizontal", 0.0)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.1}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.346" in text
        assert len(lines) == 4  # header, rule, two rows

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_improvement_lower_better(self):
        assert improvement_percent(8.0, 10.0) == pytest.approx(20.0)
        assert improvement_percent(12.0, 10.0) == pytest.approx(-20.0)

    def test_improvement_higher_better(self):
        assert improvement_percent(0.24, 0.20, lower_is_better=False) == pytest.approx(20.0)

    def test_improvement_na_for_negative_baseline(self):
        assert improvement_percent(0.2, -0.5, lower_is_better=False) is None


class TestCheapExperiments:
    """Experiments cheap enough to run fully inside the unit suite."""

    def test_table2(self):
        result = run_experiment("table2_stats", scale_name="bench")
        assert len(result["rows"]) == 5
        assert "pems-bay" in result["text"]

    def test_fig7(self):
        result = run_experiment("fig7_adjacency", scale_name="bench")
        assert result["a_sg_sparser"] is True

    def test_table8(self):
        result = run_experiment("table8_simgain", scale_name="bench")
        gains = [row["Gain%"] for row in result["rows"]]
        assert len(gains) == 5
        assert np.mean(gains) > 0
