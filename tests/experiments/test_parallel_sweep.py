"""Parallel sweep executor: parity, failure isolation, shared store.

The contract under test (DESIGN.md §13): ``run_matrix(jobs=N)`` produces
*bit-identical* metrics and per-result arrays to the serial path, a
crashing cell surfaces a structured error without killing the sweep, and
workers sharing one cache directory round-trip artifacts concurrently.

Pool spawns cost ~a second each, so the grids here are tiny and the
expensive end-to-end cases share one module-scoped dataset/scale.
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.data.synthetic import make_dataset
from repro.engine import ArtifactStore, StoreConfig, active_store, open_store, reset_store
from repro.experiments.configs import get_scale
from repro.experiments.parallel import (
    JOBS_ENV,
    CellFailure,
    SweepCellError,
    expected_cell_cost,
    resolve_jobs,
)
from repro.experiments.runners import run_matrix, splits_for


@pytest.fixture(scope="module")
def tiny():
    """One tiny dataset + scale shared by the end-to-end sweeps."""
    scale = dataclasses.replace(
        get_scale("bench"),
        dataset_sizes={"pems-bay": (14, 2)},
        split_kinds=("horizontal", "vertical"),
        stsm={**get_scale("bench").stsm, "epochs": 2, "patience": 2},
        max_test_windows=4,
    )
    dataset = make_dataset("pems-bay", num_sensors=14, num_days=2, seed=7)
    return dataset, scale, splits_for(dataset, scale)


@pytest.fixture(autouse=True)
def _isolated_store(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv(JOBS_ENV, raising=False)
    reset_store()
    yield
    reset_store()


def _flatten(matrix):
    """Deterministic (model, metrics..., history) view of a run_matrix result."""
    flat = []
    for model_name, info in matrix.items():
        metrics = info["metrics"]
        flat.append((model_name, metrics.rmse, metrics.mae, metrics.mape, metrics.r2))
        for result in info["results"]:
            flat.append(
                (
                    result.model_name,
                    result.split_name,
                    result.metrics.rmse,
                    result.metrics.mae,
                    result.metrics.mape,
                    result.metrics.r2,
                    tuple(result.fit_report.history),
                    result.num_windows,
                )
            )
    return flat


# ----------------------------------------------------------------------
# Unit-level: jobs resolution and scheduling
# ----------------------------------------------------------------------
def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "7")
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) == 7


def test_resolve_jobs_defaults_serial(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_zero_means_all_cores():
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    assert resolve_jobs(-1) == (os.cpu_count() or 1)


def test_resolve_jobs_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "many")
    with pytest.raises(ValueError, match=JOBS_ENV):
        resolve_jobs(None)


def test_expected_cost_orders_stsm_first():
    scale = get_scale("small")
    costs = [
        expected_cell_cost(name, scale)
        for name in ("STSM", "GE-GAN", "IGNNK", "GP-Kriging", "HistoricalAverage")
    ]
    assert costs == sorted(costs, reverse=True)
    assert expected_cell_cost("STSM-NC", scale) > expected_cell_cost("GE-GAN", scale)


# ----------------------------------------------------------------------
# Parity: serial vs parallel, bit-identical
# ----------------------------------------------------------------------
def test_parallel_matches_serial_bitwise(tiny):
    dataset, scale, splits = tiny
    models = ["STSM", "HistoricalAverage"]
    serial = run_matrix(
        dataset, "pems-bay", models, scale, splits=splits, seed=0, jobs=1
    )
    parallel = run_matrix(
        dataset, "pems-bay", models, scale, splits=splits, seed=0, jobs=2
    )
    assert _flatten(serial) == _flatten(parallel)
    # Telemetry rides in extra["sweep"] on both paths.
    for info in parallel.values():
        for result in info["results"]:
            sweep = result.extra["sweep"]
            assert sweep["jobs"] == 2
            assert sweep["attempts"] == 1
            assert sweep["cell_seconds"] > 0
    assert serial["STSM"]["results"][0].extra["sweep"]["jobs"] == 1


def test_parallel_matches_serial_with_seeds_grid(tiny):
    dataset, scale, splits = tiny
    serial = run_matrix(
        dataset, "pems-bay", ["STSM"], scale,
        splits=splits[:1], seeds=(0, 1), jobs=1,
    )
    parallel = run_matrix(
        dataset, "pems-bay", ["STSM"], scale,
        splits=splits[:1], seeds=(0, 1), jobs=2,
    )
    assert len(serial["STSM"]["results"]) == 2
    assert _flatten(serial) == _flatten(parallel)


def test_seeds_grid_extends_serial_results(tiny):
    dataset, scale, splits = tiny
    single = run_matrix(
        dataset, "pems-bay", ["HistoricalAverage"], scale, splits=splits, seed=0
    )
    multi = run_matrix(
        dataset, "pems-bay", ["HistoricalAverage"], scale,
        splits=splits, seeds=(0, 1),
    )
    assert len(multi["HistoricalAverage"]["results"]) == 2 * len(
        single["HistoricalAverage"]["results"]
    )


def test_env_var_drives_jobs(tiny, monkeypatch):
    dataset, scale, splits = tiny
    monkeypatch.setenv(JOBS_ENV, "2")
    matrix = run_matrix(
        dataset, "pems-bay", ["HistoricalAverage", "NearestObserved"], scale,
        splits=splits, seed=0,
    )
    for info in matrix.values():
        for result in info["results"]:
            assert result.extra["sweep"]["jobs"] == 2


def test_empty_seeds_rejected(tiny):
    dataset, scale, splits = tiny
    with pytest.raises(ValueError, match="seeds"):
        run_matrix(dataset, "pems-bay", ["STSM"], scale, splits=splits, seeds=())


# ----------------------------------------------------------------------
# Failure isolation
# ----------------------------------------------------------------------
def test_failed_cell_is_structured_and_sweep_survives(tiny):
    dataset, scale, splits = tiny
    with pytest.raises(SweepCellError) as excinfo:
        run_matrix(
            dataset, "pems-bay", ["HistoricalAverage", "NoSuchModel"], scale,
            splits=splits, seed=0, jobs=2,
        )
    error = excinfo.value
    # The bad model failed per-split, after exactly one retry each...
    assert len(error.failures) == len(splits)
    for failure in error.failures:
        assert isinstance(failure, CellFailure)
        assert failure.model_name == "NoSuchModel"
        assert failure.attempts == 2
        assert failure.error_type == "KeyError"
        assert "NoSuchModel" in failure.message
        assert failure.traceback  # carried for debugging
    # ...and every healthy cell still completed.
    completed_models = {key[0] for key in error.completed}
    assert completed_models == {"HistoricalAverage"}
    assert len(error.completed) == len(splits)


# ----------------------------------------------------------------------
# Shared-store topology
# ----------------------------------------------------------------------
def test_workers_share_one_disk_store(tiny, tmp_path, monkeypatch):
    dataset, scale, splits = tiny
    cache_dir = tmp_path / "sweep-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    reset_store()

    first = run_matrix(
        dataset, "pems-bay", ["STSM"], scale,
        splits=splits, seeds=(0, 1), jobs=2, cache_store=True,
    )
    # Workers persisted their fit artifacts into the shared directory...
    manifest = cache_dir / "store-manifest.json"
    assert manifest.exists()
    segments = json.loads(manifest.read_text())["segments"]
    assert segments
    writer_pids = {name.split("-")[1] for name in segments}
    assert os.getpid() not in {int(p) for p in writer_pids}  # written by workers
    # ...and the parent's store indexed them without a restart.
    assert active_store(True).stats["totals"]["disk_items"] > 0

    # A second parallel sweep over the same grid reuses the artifacts and
    # reproduces the metrics bit-for-bit (store hits are bit-exact).
    reset_store()
    second = run_matrix(
        dataset, "pems-bay", ["STSM"], scale,
        splits=splits, seeds=(0, 1), jobs=2, cache_store=True,
    )
    assert _flatten(first) == _flatten(second)

    # And the store-disabled serial sweep agrees too: the shared store
    # never changes metrics.
    reset_store()
    monkeypatch.delenv("REPRO_CACHE_DIR")
    plain = run_matrix(
        dataset, "pems-bay", ["STSM"], scale,
        splits=splits, seeds=(0, 1), jobs=1, cache_store=False,
    )
    assert _flatten(plain) == _flatten(first)


def test_refresh_disk_index_sees_concurrent_writer(tmp_path):
    shared = tmp_path / "shared"
    reader = ArtifactStore(disk_dir=shared)

    writer = ArtifactStore(disk_dir=shared)
    value = np.arange(6.0)
    writer.put("dtw_pair", b"k" * 16, 3.5)
    writer.put("mask_fill", b"m" * 16, value)
    writer.persist()

    # The reader indexed the (then-empty) directory at construction.
    assert reader.get("dtw_pair", b"k" * 16) is None
    added = reader.refresh_disk_index()
    assert added == 2
    assert reader.get("dtw_pair", b"k" * 16) == 3.5
    np.testing.assert_array_equal(reader.get("mask_fill", b"m" * 16), value)
    # Idempotent: nothing new on a second refresh.
    assert reader.refresh_disk_index() == 0


def test_refresh_disk_index_noop_without_disk_tier():
    store = ArtifactStore()
    assert store.refresh_disk_index() == 0


# ----------------------------------------------------------------------
# Satellite regression: no redundant persist without served windows
# ----------------------------------------------------------------------
def test_run_matrix_skips_persist_without_service(tiny, tmp_path, monkeypatch):
    dataset, scale, splits = tiny
    calls = []
    original = ArtifactStore.persist

    def counting_persist(self):
        calls.append(True)
        return original(self)

    monkeypatch.setattr(ArtifactStore, "persist", counting_persist)
    open_store(StoreConfig(disk_dir=tmp_path / "persist-count"))

    # Naive model, no service: nothing store-backed happens in the sweep
    # loop itself, so run_matrix must not issue the old unconditional
    # sweep-end flush.
    run_matrix(
        dataset, "pems-bay", ["HistoricalAverage"], scale,
        splits=splits[:1], seed=0, cache_store=True, use_service=False,
    )
    assert calls == []

    # With served windows the sweep-end flush is still there.
    run_matrix(
        dataset, "pems-bay", ["HistoricalAverage"], scale,
        splits=splits[:1], seed=0, cache_store=True, use_service=True,
    )
    assert len(calls) == 1
