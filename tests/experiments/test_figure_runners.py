"""Structural tests for the figure runners (cheap, no model training)."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


class TestFig5:
    def test_maps_for_all_datasets(self):
        result = run_experiment("fig5_sensor_maps", scale_name="bench")
        assert len(result["maps"]) == 5
        for art in result["maps"].values():
            assert art.startswith("+")
            assert "o" in art

    def test_dataset_subset(self):
        result = run_experiment("fig5_sensor_maps", scale_name="bench", datasets=["airq"])
        assert list(result["maps"]) == ["airq"]


class TestFig6:
    def test_partition_counts(self):
        result = run_experiment("fig6_partitioning", scale_name="bench")
        counts = {row["Set"]: row["Locations"] for row in result["rows"]}
        total = sum(counts.values())
        assert counts["train"] / total == pytest.approx(0.4, abs=0.1)
        assert counts["test"] / total == pytest.approx(0.5, abs=0.1)

    def test_text_contains_both_panels(self):
        result = run_experiment("fig6_partitioning", scale_name="bench")
        assert "Spatial partitioning" in result["text"]
        assert "Temporal split" in result["text"]


class TestFig11:
    def test_radii_ordering(self):
        result = run_experiment("fig11_ring_map", scale_name="bench")
        radii = result["radii"]
        assert radii["train"] < radii["test"]

    def test_map_has_all_markers(self):
        result = run_experiment("fig11_ring_map", scale_name="bench")
        assert "T" in result["text"] and "U" in result["text"]
