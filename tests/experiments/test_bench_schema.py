"""The bench schema-drift checker: wildcard collapse and subset rules."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "check_bench_schema.py"
_spec = importlib.util.spec_from_file_location("check_bench_schema", _SCRIPT)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def _problems(produced_doc, baseline_doc):
    problems: list[str] = []
    checker.matches(
        checker.skeleton(produced_doc), checker.skeleton(baseline_doc), "$", problems
    )
    return problems


class TestSkeleton:
    def test_scalars(self):
        assert checker.skeleton(1.5) == "number"
        assert checker.skeleton(3) == "number"
        assert checker.skeleton(True) == "bool"
        assert checker.skeleton("x") == "string"
        assert checker.skeleton(None) == "null"

    def test_lists_collapse_dicts_keep_keys(self):
        doc = {"a": {"x": 1.0}, "b": {"x": 2.0}}
        assert checker.skeleton(doc) == {"a": {"x": "number"}, "b": {"x": "number"}}
        assert checker.skeleton([1, 2, 3]) == ["number"]
        assert checker.skeleton([]) == ["*"]


class TestMatches:
    def test_identical_docs_match(self):
        doc = {"mode": "full", "seconds": {"a": [1.0, 2.0], "b": [3.0]}}
        assert _problems(doc, doc) == []

    def test_smoke_subset_of_full_tolerated(self):
        full = {"mode": "full", "core": {"x": 1.0}, "extra_leg": {"y": 2.0}}
        smoke = {"mode": "smoke", "core": {"x": 9.0}}
        assert _problems(smoke, full) == []

    def test_renamed_key_is_drift(self):
        assert _problems({"speed_up": 1.0}, {"speedup": 1.0, "mode": "x"})

    def test_type_change_is_drift(self):
        assert _problems({"speedup": "1.0x"}, {"speedup": 1.0, "mode": "x"})

    def test_nested_rename_is_drift_but_nested_subset_passes(self):
        baseline = {"legs": {"a": {"x": 1.0}, "b": {"x": 1.0, "deep": {"z": 2.0}}}}
        # Renamed nested key: drift even though the dict shapes "look" alike.
        produced = {"legs": {"a": {"zz": 1.0}, "b": {"zz": 1.0}}}
        assert _problems(produced, baseline)
        # Omitting a full-only nested section (b.deep) is a clean subset.
        assert _problems({"legs": {"a": {"x": 1.0}, "b": {"x": 2.0}}}, baseline) == []

    def test_differing_list_lengths_tolerated_when_homogeneous(self):
        assert _problems({"seeds": [0, 1]}, {"seeds": [0, 1, 2], "mode": "x"}) == []


class TestCli:
    def test_main_ok_and_drift(self, tmp_path):
        import json

        good = tmp_path / "good.json"
        base = tmp_path / "base.json"
        bad = tmp_path / "bad.json"
        base.write_text(json.dumps({"mode": "full", "speedup": 1.5}))
        good.write_text(json.dumps({"mode": "smoke", "speedup": 9.9}))
        bad.write_text(json.dumps({"mode": "smoke", "speed_up": 9.9}))
        assert checker.main([str(good), str(base)]) == 0
        assert checker.main([str(bad), str(base)]) == 1
        assert checker.main([str(good)]) == 2  # unpaired args

    def test_missing_file(self, tmp_path):
        assert checker.main([str(tmp_path / "nope.json"), str(tmp_path / "also.json")]) == 1
