"""``numpy_ref`` bit-identity against the pre-backend-refactor substrate.

The hashes and the ``golden_stsm_prerefactor.npz`` array below were
captured from the repository immediately *before* the ArrayBackend seam
was introduced (commit "Extract a shared training engine ..." era code,
fixed seeds).  Any bitwise drift in a fixed-seed fit under the default
backend is a regression of the determinism contract — these tests fail
on the first differing bit, not on a tolerance.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.backend import use_backend
from repro.baselines import IGNNKForecaster, INCREASEForecaster
from repro.core import STSMConfig, STSMForecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_pems_bay

GOLDEN_NPZ = Path(__file__).parent / "golden_stsm_prerefactor.npz"

# sha256 over the raw float64 bytes, captured pre-refactor.
STSM_STATE_SHA256 = "8933e4a0eac3d24482b59515809fa4dc0dc0c2efa95a7f7d34882e0b8ddd7c97"
STSM_PRED_SHA256 = "7be1dce90d3ca1f6d2a5c1b7dfe863dce5952ec3cf58d1f67a9b799f753e9b53"
IGNNK_PRED_SHA256 = "eab4cd74ae5d74ba36b89b78e3f3f18e46f9a4c39257ce433c1f2e8e893ef976"
INCREASE_PRED_SHA256 = "1863580bf5e2f67f07b421c8a098db409122c99189ce723870f76204e92a828a"


def _sha(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


@pytest.fixture(scope="module")
def golden_setup():
    dataset = make_pems_bay(num_sensors=24, num_days=3, seed=7)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=8, horizon=8)
    train_ix, _ = temporal_split(dataset.num_steps)
    starts = np.arange(dataset.num_steps - spec.total - 8, dataset.num_steps - spec.total)
    return dataset, split, spec, train_ix, starts


def test_stsm_fixed_seed_fit_bit_identical_to_prerefactor(golden_setup):
    dataset, split, spec, train_ix, starts = golden_setup
    # config.backend pins numpy_ref regardless of the process backend, so
    # this bit-identity check also holds on the REPRO_BACKEND=numpy_fused
    # CI leg.
    config = STSMConfig(
        epochs=3, hidden_dim=16, num_blocks=1, top_k=8, seed=0, backend="numpy_ref"
    )
    model = STSMForecaster(config=config)
    model.fit(dataset, split, spec, train_ix)
    predictions = model.predict(starts)

    state = model.network.state_dict()
    digest = hashlib.sha256()
    for name in sorted(state):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(state[name]).tobytes())
    assert digest.hexdigest() == STSM_STATE_SHA256, "trained weights drifted bitwise"
    assert _sha(predictions) == STSM_PRED_SHA256, "predictions drifted bitwise"

    golden = np.load(GOLDEN_NPZ)["predictions"]
    np.testing.assert_array_equal(predictions, golden)


@pytest.mark.parametrize(
    "cls, expected",
    [(IGNNKForecaster, IGNNK_PRED_SHA256), (INCREASEForecaster, INCREASE_PRED_SHA256)],
    ids=["ignnk", "increase"],
)
def test_baseline_fixed_seed_fits_bit_identical_to_prerefactor(golden_setup, cls, expected):
    dataset, split, spec, train_ix, starts = golden_setup
    with use_backend("numpy_ref"):
        model = cls(iterations=20, hidden=8, seed=0)
        model.fit(dataset, split, spec, train_ix)
        predictions = model.predict(starts)
    assert _sha(predictions) == expected, f"{cls.__name__} fit drifted bitwise"
