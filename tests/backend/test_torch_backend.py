"""Torch backend unit tests (skipped entirely when torch is absent).

The cross-backend parity suite (test_parity.py) certifies the numerics;
these tests pin the torch-specific contracts that parity alone would not
surface: numpy dtype-promotion semantics, copy-on-cast, numpy-identical
RNG streams, scatter tiers, and device/dtype configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

torch = pytest.importorskip("torch")

from repro.backend import backend_available, get_backend, use_backend  # noqa: E402
from repro.backend.torch_backend import TorchBackend  # noqa: E402

pytestmark = pytest.mark.skipif(
    not backend_available("torch"), reason="torch backend unavailable"
)


@pytest.fixture()
def b() -> TorchBackend:
    return TorchBackend(device="cpu", dtype="float64")


def test_registered_and_selectable():
    with use_backend("torch") as backend:
        assert backend.name == "torch"
        assert get_backend().name == "torch"


def test_to_float_array_dtype_rules(b):
    assert b.to_float_array([1, 2, 3]).dtype == torch.float64
    assert b.to_float_array(np.zeros(3, dtype=np.float32)).dtype == torch.float32
    assert b.to_float_array(np.zeros(3, dtype=np.int32)).dtype == torch.float64
    b32 = TorchBackend(device="cpu", dtype="float32")
    assert b32.to_float_array(np.zeros(3)).dtype == torch.float32
    assert b32.to_float_array([1, 2]).dtype == torch.float32


def test_python_float_promotes_int_tensor_to_float64(b):
    # numpy: int64 * 0.5 -> float64; raw torch would give float32.
    out = b.multiply(b.arange(4), 0.5)
    assert out.dtype == torch.float64
    np.testing.assert_array_equal(b.to_numpy(out), np.arange(4) * 0.5)
    assert b.divide(1.0, b.add(b.arange(1, 4), 0.0)).dtype == torch.float64


def test_arange_matches_numpy_dtypes(b):
    assert b.arange(5).dtype == torch.int64
    assert b.arange(0.0, 1.0, 0.25).dtype == torch.float64


def test_cast_always_copies_even_to_same_dtype(b):
    base = b.ones((3,))
    view = b.broadcast_to(b.ones((1,)), (4,))
    for source in (base, view):
        out = b.cast(source, source.dtype)
        assert out.data_ptr() != source.data_ptr()
        out += 1.0  # an adopted-owned grad gets iadd'ed; must not alias


def test_where_with_scalar_branches(b):
    cond = b.asarray(np.array([True, False, True]))
    out = b.where(cond, 1.0, 0.01)
    assert out.dtype == torch.float64
    np.testing.assert_allclose(b.to_numpy(out), [1.0, 0.01, 1.0])
    mixed = b.where(cond, b.asarray(np.array([5.0, 6.0, 7.0])), 0.0)
    np.testing.assert_allclose(b.to_numpy(mixed), [5.0, 0.0, 7.0])


def test_rng_streams_match_numpy_backends(b):
    from repro.backend import NumpyRefBackend

    ref = NumpyRefBackend()
    draws_t = b.to_numpy(b.normal(b.default_rng(7), 0.0, 1.0, (4, 3)))
    draws_n = ref.normal(ref.default_rng(7), 0.0, 1.0, (4, 3))
    np.testing.assert_array_equal(draws_t, draws_n)
    mask_t = b.to_numpy(b.dropout_mask(b.default_rng(3), (64,), 0.7, np.float64))
    mask_n = ref.dropout_mask(ref.default_rng(3), (64,), 0.7, np.float64)
    np.testing.assert_array_equal(mask_t, mask_n)


def test_scatter_add_three_tiers(b):
    rng = np.random.default_rng(0)
    # Basic index: strided +=.
    target = b.zeros((4, 5))
    values = b.asarray(rng.normal(size=(4, 3)))
    b.scatter_add(target, (slice(None), slice(1, 4)), values)
    expected = np.zeros((4, 5)); expected[:, 1:4] += b.to_numpy(values)
    np.testing.assert_allclose(b.to_numpy(target), expected)
    # Pure advanced with duplicates: accumulate, not overwrite.
    target = b.zeros((4,))
    b.scatter_add(target, np.array([0, 1, 1, 3]), b.asarray(np.ones(4)))
    np.testing.assert_allclose(b.to_numpy(target), [1.0, 2.0, 0.0, 1.0])
    # Mixed basic+advanced (the conv tap layout): numpy-equivalent.
    index = (slice(None), slice(None), np.array([[0, 1], [1, 2]]))
    target = b.zeros((2, 3, 4))
    values = b.asarray(rng.normal(size=(2, 3, 2, 2)))
    b.scatter_add(target, index, values)
    expected = np.zeros((2, 3, 4))
    np.add.at(expected, index, b.to_numpy(values))
    np.testing.assert_allclose(b.to_numpy(target), expected)


def test_reductions_and_shape_ops_match_numpy(b):
    x = np.random.default_rng(1).normal(size=(3, 4, 5))
    t = b.asarray(x)
    np.testing.assert_allclose(b.to_numpy(b.sum(t, axis=None, keepdims=True)), x.sum(keepdims=True))
    np.testing.assert_allclose(b.to_numpy(b.amax(t, axis=(0, 2))), x.max(axis=(0, 2)))
    np.testing.assert_allclose(
        b.to_numpy(b.expand_dims(b.asarray(x[0, 0]), (0, 2))), np.expand_dims(x[0, 0], (0, 2))
    )
    np.testing.assert_allclose(b.to_numpy(b.transpose(t, (2, 0, 1))), x.transpose(2, 0, 1))
    np.testing.assert_allclose(
        b.to_numpy(b.pad(t, ((0, 0), (1, 2), (3, 0)), constant=0.5)),
        np.pad(x, ((0, 0), (1, 2), (3, 0)), constant_values=0.5),
    )
    parts_t = [b.to_numpy(p) for p in b.split(t, 2, axis=1)]
    for produced, expected in zip(parts_t, np.split(x, 2, axis=1)):
        np.testing.assert_allclose(produced, expected)


def test_configured_cache_and_dtype(b):
    assert b.configured() is b
    b32 = b.configured(dtype="float32")
    assert b32.dtype == torch.float32
    assert b.configured(dtype="float32") is b32
    with pytest.raises(ValueError, match="unknown torch backend dtype"):
        TorchBackend(device="cpu", dtype="float16")


def test_state_dict_is_host_numpy_under_torch():
    from repro import nn

    with use_backend("torch"):
        layer = nn.Linear(4, 2, rng=nn.init.default_rng(0))
        state = layer.state_dict()
        assert all(isinstance(v, np.ndarray) for v in state.values())
        assert isinstance(layer.weight.data, torch.Tensor)
        layer.load_state_dict(state)  # round-trips back onto torch storage
        assert isinstance(layer.weight.data, torch.Tensor)
