"""Backend parity: every registered backend must match ``numpy_ref``.

Every nn layer and functional op is run — forward and backward, identical
seeds — under each backend; outputs and gradients must agree to tight
float64 tolerance (backends reorder GEMMs and fuse kernels, so
bit-identity is not required, but anything beyond last-ulps noise is a
backend bug).

The backend list is discovered from the registry, so optional backends
(torch) are covered automatically when their library is installed and
reported as explicit skips when it is not.  Per-backend tolerances:
``numpy_fused`` reorders float64 numpy kernels (last-ulps noise only);
``torch`` runs a second BLAS/kernel library in float64, which earns a
slightly looser — still float64-noise-level — bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd import (
    Tensor,
    check_gradients,
    clip_values,
    concatenate,
    conv1d,
    dropout,
    elu,
    gelu,
    leaky_relu,
    log_softmax,
    maximum,
    minimum,
    pad,
    softmax,
    softplus,
    stack,
    where,
)
from repro.backend import KNOWN_OPTIONAL_BACKENDS, available_backends, use_backend

BACKENDS = ("numpy_ref", "numpy_fused")

#: (rtol, atol) per non-reference backend; anything discovered but not
#: listed here gets the strict default.
TOLERANCES = {
    "numpy_fused": (1e-9, 1e-11),
    "torch": (1e-7, 1e-9),
}
RTOL, ATOL = TOLERANCES["numpy_fused"]


def _parity_backends():
    """Every registered backend except the reference, plus visible skips
    for known-optional backends whose library is absent."""
    params = [name for name in available_backends() if name != "numpy_ref"]
    for name in sorted(KNOWN_OPTIONAL_BACKENDS):
        if name not in params:
            params.append(
                pytest.param(
                    name,
                    marks=pytest.mark.skip(
                        reason=f"optional backend {name!r} not installed "
                        f"({KNOWN_OPTIONAL_BACKENDS[name]})"
                    ),
                )
            )
    return params


PARITY_BACKENDS = _parity_backends()


def _tolerances(backend: str) -> tuple[float, float]:
    return TOLERANCES.get(backend, (RTOL, ATOL))


def _x(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


# ---------------------------------------------------------------------------
# Case builders: each returns (output Tensor, [watched Tensors]) and must be
# deterministic given the active backend (fresh modules, fixed seeds).
# ---------------------------------------------------------------------------
def case_linear():
    layer = nn.Linear(6, 4, rng=nn.init.default_rng(3))
    x = Tensor(_x((5, 7, 6)), requires_grad=True)
    return layer(x), [x, layer.weight, layer.bias]


def case_conv1d_dilated():
    layer = nn.Conv1d(3, 5, kernel_size=3, dilation=2, padding="same", rng=nn.init.default_rng(4))
    x = Tensor(_x((4, 3, 12)), requires_grad=True)
    return layer(x), [x, layer.weight, layer.bias]


def case_conv1d_raw():
    w = Tensor(_x((4, 2, 3), seed=5), requires_grad=True)
    bias = Tensor(_x((4,), seed=6), requires_grad=True)
    x = Tensor(_x((2, 2, 10), seed=7), requires_grad=True)
    return conv1d(x, w, bias, dilation=1, padding=1), [x, w, bias]


def case_layernorm():
    layer = nn.LayerNorm(8)
    x = Tensor(_x((3, 4, 8)), requires_grad=True)
    return layer(x), [x, layer.gamma, layer.beta]


def case_dropout():
    x = Tensor(_x((32, 16)), requires_grad=True)
    rng = nn.init.default_rng(11)
    return dropout(x, 0.3, training=True, rng=rng), [x]


def case_embedding():
    layer = nn.Embedding(10, 4, rng=nn.init.default_rng(5))
    idx = np.array([[1, 2, 3], [3, 3, 9]])
    return layer(idx), [layer.weight]


def case_gru():
    layer = nn.GRU(3, 5, rng=nn.init.default_rng(6))
    x = Tensor(_x((2, 7, 3)), requires_grad=True)
    out, _h = layer(x)
    return out, [x] + list(layer.parameters())


def case_lstm():
    layer = nn.LSTM(3, 5, rng=nn.init.default_rng(7))
    x = Tensor(_x((2, 6, 3)), requires_grad=True)
    out, _state = layer(x)
    return out, [x] + list(layer.parameters())


def case_gat():
    layer = nn.GraphAttention(4, 6, num_heads=2, rng=nn.init.default_rng(8))
    adjacency = (np.random.default_rng(9).random((7, 7)) > 0.5).astype(float)
    x = Tensor(_x((7, 4)), requires_grad=True)
    return layer(adjacency, x), [x] + list(layer.parameters())


def case_multihead_attention():
    layer = nn.MultiHeadAttention(8, 2, rng=nn.init.default_rng(10))
    x = Tensor(_x((2, 5, 8)), requires_grad=True)
    return layer(x), [x] + list(layer.parameters())


def case_transformer_layer():
    layer = nn.TransformerEncoderLayer(8, 2, rng=nn.init.default_rng(12))
    x = Tensor(_x((2, 5, 8)), requires_grad=True)
    return layer(x), [x] + list(layer.parameters())


def case_mse_masked():
    pred = Tensor(_x((4, 6)), requires_grad=True)
    target = Tensor(_x((4, 6), seed=1))
    mask = np.random.default_rng(2).random((4, 6)) > 0.4
    return nn.mse_loss(pred, target, mask), [pred]


def case_mae():
    pred = Tensor(_x((4, 6)), requires_grad=True)
    return nn.mae_loss(pred, Tensor(_x((4, 6), seed=1))), [pred]


def case_huber():
    pred = Tensor(_x((4, 6)), requires_grad=True)
    return nn.huber_loss(pred, Tensor(_x((4, 6), seed=1)), delta=0.7), [pred]


def case_bce():
    logits = Tensor(_x((5, 3)), requires_grad=True)
    probability = logits.sigmoid()
    target = Tensor((np.random.default_rng(3).random((5, 3)) > 0.5).astype(float))
    return nn.bce_loss(probability, target), [logits]


def case_nt_xent():
    anchor = Tensor(_x((6, 8)), requires_grad=True)
    positive = Tensor(_x((6, 8), seed=1), requires_grad=True)
    return nn.nt_xent_loss(anchor, positive, temperature=0.5), [anchor, positive]


def case_softmax_ops():
    x = Tensor(_x((3, 5, 7)), requires_grad=True)
    return softmax(x, axis=-1) + log_softmax(x, axis=1), [x]


def case_elementwise_zoo():
    x = Tensor(_x((4, 5)), requires_grad=True)
    y = Tensor(_x((4, 5), seed=1), requires_grad=True)
    out = maximum(x, y) + minimum(x, y) * leaky_relu(x) + elu(y) + gelu(x) + softplus(y)
    out = out + clip_values(x, -0.5, 0.5) + where(x.numpy() > 0, x, y)
    return out, [x, y]


def case_shape_zoo():
    x = Tensor(_x((3, 4)), requires_grad=True)
    y = Tensor(_x((3, 4), seed=1), requires_grad=True)
    out = concatenate([x, y], axis=1) @ Tensor(_x((8, 2), seed=2))
    out = out + stack([x[:, :2], y[:, :2]], axis=0).sum(axis=0)
    return pad(out, ((1, 1), (0, 0))), [x, y]


def case_reductions_minmax():
    x = Tensor(_x((4, 5, 6)), requires_grad=True)
    out = x.max(axis=1) + x.min(axis=(0, 2), keepdims=True).sum() + x.mean(axis=1)
    return out, [x]


CASES = {
    "linear": case_linear,
    "conv1d_dilated": case_conv1d_dilated,
    "conv1d_raw": case_conv1d_raw,
    "layernorm": case_layernorm,
    "dropout": case_dropout,
    "embedding": case_embedding,
    "gru": case_gru,
    "lstm": case_lstm,
    "gat": case_gat,
    "multihead_attention": case_multihead_attention,
    "transformer_layer": case_transformer_layer,
    "mse_masked": case_mse_masked,
    "mae": case_mae,
    "huber": case_huber,
    "bce": case_bce,
    "nt_xent": case_nt_xent,
    "softmax_ops": case_softmax_ops,
    "elementwise_zoo": case_elementwise_zoo,
    "shape_zoo": case_shape_zoo,
    "reductions_minmax": case_reductions_minmax,
}


def _run(case, backend: str):
    with use_backend(backend):
        out, watched = CASES[case]()
        out.sum().backward()
        grads = []
        for tensor in watched:
            assert tensor.grad is not None, f"{case}: missing grad under {backend}"
            grads.append(np.asarray(tensor.grad))
        return np.asarray(out.data), grads


@pytest.mark.parametrize("backend", PARITY_BACKENDS)
@pytest.mark.parametrize("case", sorted(CASES))
def test_backend_matches_ref(case, backend):
    rtol, atol = _tolerances(backend)
    out_ref, grads_ref = _run(case, "numpy_ref")
    out_other, grads_other = _run(case, backend)
    np.testing.assert_allclose(
        out_other, out_ref, rtol=rtol, atol=atol, err_msg=f"{case}: output under {backend}"
    )
    assert len(grads_ref) == len(grads_other)
    for i, (g_ref, g_other) in enumerate(zip(grads_ref, grads_other)):
        np.testing.assert_allclose(
            g_other, g_ref, rtol=rtol, atol=atol,
            err_msg=f"{case}: grad[{i}] under {backend}",
        )


def _fit_and_predict(backend: str) -> np.ndarray:
    from repro.core import STSMConfig, STSMForecaster
    from repro.data import WindowSpec, space_split, temporal_split
    from repro.data.synthetic import make_pems_bay

    dataset = make_pems_bay(num_sensors=16, num_days=2, seed=3)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=6, horizon=4)
    train_ix, _ = temporal_split(dataset.num_steps)
    starts = np.arange(dataset.num_steps - spec.total - 4, dataset.num_steps - spec.total)

    config = STSMConfig(
        epochs=2, hidden_dim=8, num_blocks=1, top_k=4, seed=0, backend=backend
    )
    model = STSMForecaster(config=config)
    model.fit(dataset, split, spec, train_ix)
    return model.predict(starts)


@pytest.mark.parametrize("backend", PARITY_BACKENDS)
def test_stsm_fit_tracks_ref_end_to_end(backend):
    """A tiny fixed-seed STSM fit agrees across backends to float noise.

    Training amplifies kernel-level rounding differences over epochs, so
    the tolerance here is looser than the per-op bound — but the fits
    must remain numerically interchangeable.
    """
    reference = _fit_and_predict("numpy_ref")
    other = _fit_and_predict(backend)
    np.testing.assert_allclose(other, reference, rtol=1e-6, atol=1e-8)


@pytest.mark.parametrize("backend", ["numpy_ref", *PARITY_BACKENDS])
def test_conv1d_gradients_numerically_correct(backend):
    """The conv kernels differ per backend; certify both against FD."""
    with use_backend(backend):
        w = Tensor(_x((3, 2, 3), seed=5), requires_grad=True)
        x = Tensor(_x((2, 2, 9), seed=7), requires_grad=True)
    check_gradients(
        lambda xx, ww: conv1d(xx, ww, dilation=2, padding=2), [x, w], backend=backend
    )
