"""Device/dtype plumbing: config round-trips, cross-backend restore,
serving-bundle backend overrides.

The numpy-only legs run everywhere; the torch legs skip when torch is
absent.  The contract under test: ``STSMConfig.device/dtype`` serialise
and validate, checkpoints are backend-neutral (host numpy), and a model
saved under one backend restores and predicts under another.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.backend import backend_available, use_backend
from repro.core import STSMConfig, STSMForecaster, load_forecaster, save_forecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_pems_bay

TORCH_MISSING = not backend_available("torch")
needs_torch = pytest.mark.skipif(TORCH_MISSING, reason="torch not installed")


# ----------------------------------------------------------------------
# Config round-trip and validation
# ----------------------------------------------------------------------
def test_config_device_dtype_roundtrip():
    config = STSMConfig(backend="numpy_fused", device="cpu", dtype="float64")
    config.validate()
    fields = dataclasses.asdict(config)
    assert fields["device"] == "cpu"
    assert fields["dtype"] == "float64"
    restored = STSMConfig(**fields)
    assert restored == config


def test_config_defaults_leave_device_dtype_unset():
    config = STSMConfig()
    config.validate()
    assert config.device is None and config.dtype is None


def test_config_rejects_bad_dtype_and_device():
    with pytest.raises(ValueError, match="dtype"):
        STSMConfig(dtype="float16").validate()
    with pytest.raises(ValueError, match="device"):
        STSMConfig(device=3).validate()


def test_config_numpy_backend_rejects_cuda_at_fit_resolution():
    # validate() accepts any device string (the backend owns device
    # semantics); resolution at fit time is where a numpy backend
    # refuses a non-cpu device.
    config = STSMConfig(backend="numpy_ref", device="cuda")
    config.validate()
    model = STSMForecaster(config=config)
    with pytest.raises(ValueError, match="host cpu only"):
        model._resolved_backend()


# ----------------------------------------------------------------------
# Cross-backend checkpoint restore (Trainer / EarlyStopping path)
# ----------------------------------------------------------------------
def _fit_regression(backend: str, checkpoint_dir):
    from repro.autograd import Tensor
    from repro.engine import EarlyStopping, Trainer, TrainingProgram
    from repro.nn import Linear, init, mse_loss
    from repro.optim import SGD

    class Program(TrainingProgram):
        def __init__(self) -> None:
            rng = np.random.default_rng(42)
            self.inputs = rng.normal(size=(24, 4))
            self.targets = self.inputs @ rng.normal(size=(4, 2))
            self.network = Linear(4, 2, rng=init.default_rng(0))
            self.optimiser = SGD(self.network.parameters(), lr=0.1)
            self.epoch = 0

        def batches(self, epoch, rng):
            rows = rng.choice(len(self.inputs), size=8, replace=False)
            yield Tensor(self.inputs[rows]), Tensor(self.targets[rows])

        def compute_loss(self, batch, rng):
            x, y = batch
            return mse_loss(self.network(x), y)

        def validation_score(self, epoch):
            self.epoch += 1
            return float(3 - self.epoch) if self.epoch < 3 else 4.0

    with use_backend(backend):
        program = Program()
        early = EarlyStopping(patience=5, checkpoint_dir=checkpoint_dir)
        Trainer(
            program, max_epochs=4, rng=np.random.default_rng(7), early_stopping=early
        ).fit()
        return program.network.state_dict()


def _restore_regression(backend: str, checkpoint_dir):
    from repro.engine import Trainer, TrainingProgram
    from repro.nn import Linear, init
    from repro.optim import SGD

    with use_backend(backend):

        class Program(TrainingProgram):
            def __init__(self) -> None:
                self.network = Linear(4, 2, rng=init.default_rng(9))
                self.optimiser = SGD(self.network.parameters(), lr=0.1)

        program = Program()
        trainer = Trainer(program, max_epochs=0)
        assert trainer.restore(checkpoint_dir)
        return program.network.state_dict()


@pytest.mark.parametrize(
    "fit_backend, restore_backend",
    [
        ("numpy_fused", "numpy_ref"),
        ("numpy_ref", "numpy_fused"),
        pytest.param("torch", "numpy_ref", marks=needs_torch),
        pytest.param("numpy_ref", "torch", marks=needs_torch),
    ],
)
def test_checkpoint_restores_across_backends(tmp_path, fit_backend, restore_backend):
    saved = _fit_regression(fit_backend, tmp_path / "ckpt")
    assert all(isinstance(v, np.ndarray) for v in saved.values())
    restored = _restore_regression(restore_backend, tmp_path / "ckpt")
    assert set(saved) == set(restored)
    for name in saved:
        np.testing.assert_allclose(restored[name], saved[name], rtol=1e-12, atol=0)


# ----------------------------------------------------------------------
# Forecaster save/load with backend overrides (serving path)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted_context():
    dataset = make_pems_bay(num_sensors=12, num_days=1, seed=5)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=6, horizon=4)
    train_ix, _ = temporal_split(dataset.num_steps)
    config = STSMConfig(epochs=1, hidden_dim=8, num_blocks=1, top_k=4, seed=0)
    model = STSMForecaster(config=config)
    model.fit(dataset, split, spec, train_ix)
    starts = np.arange(dataset.num_steps - spec.total - 3, dataset.num_steps - spec.total)
    return model, dataset, split, starts


def test_load_forecaster_backend_override(tmp_path, fitted_context):
    model, dataset, split, starts = fitted_context
    path = save_forecaster(model, tmp_path / "model.npz")
    baseline = model.predict(starts)

    loaded = load_forecaster(path, dataset, split, backend="numpy_fused")
    assert loaded.config.backend == "numpy_fused"
    np.testing.assert_allclose(loaded.predict(starts), baseline, rtol=1e-6, atol=1e-8)

    # The saved checkpoint itself is untouched by the override.
    again = load_forecaster(path, dataset, split)
    assert again.config.backend is None


def test_load_forecaster_rejects_bad_override(tmp_path, fitted_context):
    model, dataset, split, _starts = fitted_context
    path = save_forecaster(model, tmp_path / "model.npz")
    with pytest.raises(ValueError, match="unknown backend"):
        load_forecaster(path, dataset, split, backend="not_a_backend")
    with pytest.raises(ValueError, match="dtype"):
        load_forecaster(path, dataset, split, dtype="float16")


@needs_torch
def test_load_forecaster_torch_override_predicts(tmp_path, fitted_context):
    model, dataset, split, starts = fitted_context
    path = save_forecaster(model, tmp_path / "model.npz")
    baseline = model.predict(starts)
    loaded = load_forecaster(
        path, dataset, split, backend="torch", device="cpu", dtype="float64"
    )
    np.testing.assert_allclose(loaded.predict(starts), baseline, rtol=1e-6, atol=1e-8)


def test_bundle_load_with_backend_override(tmp_path, fitted_context):
    from repro.serving.transport import BundleEntry, load_bundle, save_bundle

    model, _dataset, _split, starts = fitted_context
    recipe = {"name": "pems-bay", "num_sensors": 12, "num_days": 1, "seed": 5}
    save_bundle(
        tmp_path / "bundle",
        {"stsm/demo": BundleEntry(forecaster=model, dataset=recipe,
                                  warmup_starts=[int(starts[0])])},
    )
    baseline = model.predict(starts)
    models = load_bundle(tmp_path / "bundle", backend="numpy_fused")
    forecaster, warmups = models["stsm/demo"]
    assert forecaster.config.backend == "numpy_fused"
    assert warmups == [int(starts[0])]
    np.testing.assert_allclose(forecaster.predict(starts), baseline, rtol=1e-6, atol=1e-8)


def test_serve_config_carries_backend_fields():
    from repro.serving.transport import ServeConfig

    config = ServeConfig(checkpoint_dir="/tmp/x", backend="numpy_fused",
                         device="cpu", dtype="float64")
    fields = dataclasses.asdict(config)
    assert fields["backend"] == "numpy_fused"
    assert fields["device"] == "cpu"
    assert fields["dtype"] == "float64"
