"""Backend registry behaviour: selection, scoping, env var, config."""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    NumpyFusedBackend,
    NumpyRefBackend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.core import STSMConfig


@pytest.fixture()
def ref_active():
    """Pin numpy_ref as the active backend for the test, then restore."""
    previous = set_backend("numpy_ref")
    yield
    set_backend(previous)


def test_both_backends_registered():
    names = available_backends()
    assert "numpy_ref" in names
    assert "numpy_fused" in names


@pytest.mark.skipif(
    os.environ.get("REPRO_BACKEND", "numpy_ref") != "numpy_ref",
    reason="suite runs under a non-default REPRO_BACKEND",
)
def test_default_backend_is_ref():
    assert get_backend().name == "numpy_ref"


def test_set_backend_returns_previous_and_switches(ref_active):
    previous = set_backend("numpy_fused")
    try:
        assert previous.name == "numpy_ref"
        assert get_backend().name == "numpy_fused"
    finally:
        set_backend(previous)
    assert get_backend().name == "numpy_ref"


def test_use_backend_scopes_and_restores(ref_active):
    assert get_backend().name == "numpy_ref"
    with use_backend("numpy_fused") as backend:
        assert backend.name == "numpy_fused"
        assert get_backend().name == "numpy_fused"
    assert get_backend().name == "numpy_ref"


def test_use_backend_none_is_noop():
    with use_backend(None) as backend:
        assert backend is get_backend()


def test_use_backend_restores_on_error(ref_active):
    with pytest.raises(RuntimeError):
        with use_backend("numpy_fused"):
            raise RuntimeError("boom")
    assert get_backend().name == "numpy_ref"


def test_unknown_backend_raises():
    with pytest.raises(KeyError, match="unknown backend"):
        set_backend("not_a_backend")


def test_unknown_backend_message_lists_registered_and_optional():
    from repro.backend import KNOWN_OPTIONAL_BACKENDS, UnknownBackendError

    with pytest.raises(UnknownBackendError) as excinfo:
        set_backend("not_a_backend")
    message = str(excinfo.value)
    for name in available_backends():
        assert name in message
    # Known-optional backends that are not installed must be named with
    # their install hint, so the error is actionable.
    for name, hint in KNOWN_OPTIONAL_BACKENDS.items():
        if name not in available_backends():
            assert name in message
            assert hint in message


def test_uninstalled_optional_backend_raises_actionable_error():
    from repro.backend import KNOWN_OPTIONAL_BACKENDS, backend_available

    if backend_available("torch"):
        pytest.skip("torch is installed; the uninstalled path cannot be exercised")
    with pytest.raises(KeyError, match="unknown backend 'torch'") as excinfo:
        set_backend("torch")
    assert KNOWN_OPTIONAL_BACKENDS["torch"] in str(excinfo.value)


def test_backend_available_for_registered_and_unknown_names():
    from repro.backend import backend_available

    assert backend_available("numpy_ref")
    assert backend_available("numpy_fused")
    assert not backend_available("not_a_backend")


def test_resolve_backend_triples():
    from repro.backend import resolve_backend

    assert resolve_backend(None) is None
    assert resolve_backend(None, None, None) is None
    assert resolve_backend("numpy_fused").name == "numpy_fused"
    assert resolve_backend(None, "cpu", "float64") is get_backend()
    with pytest.raises(ValueError, match="host cpu only"):
        resolve_backend("numpy_ref", device="cuda")
    with pytest.raises(ValueError, match="float64 only"):
        resolve_backend("numpy_fused", dtype="float32")
    with pytest.raises(KeyError, match="unknown backend"):
        resolve_backend("not_a_backend")


def test_register_custom_backend():
    class Custom(NumpyRefBackend):
        name = "custom_test"

    register_backend("custom_test", Custom)
    try:
        assert "custom_test" in available_backends()
        with use_backend("custom_test") as backend:
            assert isinstance(backend, Custom)
            assert isinstance(backend, ArrayBackend)
    finally:
        from repro.backend import registry

        registry._FACTORIES.pop("custom_test", None)
        registry._INSTANCES.pop("custom_test", None)


def test_env_var_selects_backend():
    code = "from repro.backend import get_backend; print(get_backend().name)"
    env = dict(os.environ)
    env["REPRO_BACKEND"] = "numpy_fused"
    src = os.path.abspath("src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env, check=True
    )
    assert out.stdout.strip() == "numpy_fused"


def test_config_threads_backend():
    config = STSMConfig(backend="numpy_fused")
    config.validate()
    with pytest.raises(ValueError, match="unknown backend"):
        STSMConfig(backend="nope").validate()


def test_backends_share_numpy_rng_streams():
    ref, fused = NumpyRefBackend(), NumpyFusedBackend()
    a = ref.random(ref.default_rng(7), (4, 3))
    b = fused.random(fused.default_rng(7), (4, 3))
    np.testing.assert_array_equal(a, b)
