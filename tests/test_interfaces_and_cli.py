"""Forecaster interface contract and the experiments CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FitReport, Forecaster
from repro.experiments.__main__ import main as cli_main


class TestForecasterInterface:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            Forecaster()

    def test_fit_report_defaults(self):
        report = FitReport()
        assert report.train_seconds == 0.0
        assert report.history == []
        assert report.extra == {}

    def test_all_models_implement_interface(self):
        from repro.baselines import (
            GEGANForecaster,
            HistoricalAverageForecaster,
            IGNNKForecaster,
            INCREASEForecaster,
        )
        from repro.core import STSMForecaster

        for cls in (
            GEGANForecaster,
            IGNNKForecaster,
            INCREASEForecaster,
            HistoricalAverageForecaster,
            STSMForecaster,
        ):
            assert issubclass(cls, Forecaster)
            instance = cls()
            assert callable(instance.fit)
            assert callable(instance.predict)
            assert isinstance(instance.name, str)


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4_overall" in out

    def test_run_cheap_experiment(self, capsys):
        assert cli_main(["fig7_adjacency", "--scale", "bench"]) == 0
        out = capsys.readouterr().out
        assert "A_sg" in out

    def test_run_with_datasets_argument(self, capsys):
        assert cli_main(["table2_stats", "--scale", "bench", "--datasets", "airq"]) == 0
        out = capsys.readouterr().out
        assert "airq" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            cli_main(["tableXX", "--scale", "bench"])


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.1.0"

    def test_subpackages_importable(self):
        import repro

        for name in ("autograd", "nn", "optim", "graph", "temporal",
                     "data", "core", "baselines", "evaluation", "experiments"):
            assert hasattr(repro, name)

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None
