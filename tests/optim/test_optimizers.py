"""Optimiser and scheduler behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.optim import SGD, Adam, CosineAnnealingLR, StepLR, clip_grad_norm
from repro.nn.module import Parameter


def _quadratic_param():
    return Parameter(np.array([5.0, -3.0]))


class TestSGD:
    def test_minimises_quadratic(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-6)

    def test_momentum_accelerates(self):
        plain, momentum = _quadratic_param(), _quadratic_param()
        opt_plain = SGD([plain], lr=0.01)
        opt_mom = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for p, opt in ((plain, opt_plain), (momentum, opt_mom)):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
        assert np.abs(momentum.data).sum() < np.abs(plain.data).sum()

    def test_skips_parameters_without_grad(self):
        p = _quadratic_param()
        before = p.data.copy()
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, before)


class TestAdam:
    def test_minimises_quadratic(self):
        p = _quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-3)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.01, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            (p * 0.0).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 10.0

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            Adam([_quadratic_param()], lr=0.0)

    def test_trains_small_network(self):
        rng = np.random.default_rng(0)
        net = nn.Sequential(nn.Linear(2, 8), nn.Tanh(), nn.Linear(8, 1))
        opt = Adam(net.parameters(), lr=0.02)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] * 2 - x[:, 1:]) * 0.5
        first = None
        for _ in range(200):
            opt.zero_grad()
            loss = nn.mse_loss(net(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
        assert loss.item() < 0.1 * first


class TestClip:
    def test_clips_large_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=5.0)
        assert np.allclose(p.grad, 0.1)


class TestSchedulers:
    def test_step_lr_halves(self):
        p = _quadratic_param()
        opt = Adam([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_reaches_min(self):
        p = _quadratic_param()
        opt = Adam([p], lr=1.0)
        sched = CosineAnnealingLR(opt, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_invalid_args_rejected(self):
        opt = Adam([_quadratic_param()], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, total_epochs=0)
