"""Wire codec: bitwise round-trips, malformed-frame rejection, error taxonomy."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.serving import InvalidRequest, ModelNotFound, QueueFull, ServingError
from repro.serving.transport import codec
from repro.serving.transport.codec import CodecError


class TestFrameLayer:
    def test_frame_round_trip(self):
        header, payload = codec.decode_frame(
            codec.encode_frame({"kind": "x", "n": 3}, b"\x00\x01\xff")
        )
        assert header == {"kind": "x", "n": 3}
        assert payload == b"\x00\x01\xff"

    def test_empty_payload(self):
        header, payload = codec.decode_frame(codec.encode_frame({"kind": "x"}))
        assert payload == b""

    @pytest.mark.parametrize("cut", [0, 1, 5, 13])
    def test_truncated_prelude(self, cut):
        body = codec.encode_frame({"kind": "x"}, b"abc")
        with pytest.raises(CodecError, match="truncated"):
            codec.decode_frame(body[:cut])

    def test_truncated_body_every_cut(self):
        """Property-style: any strict prefix past the prelude fails loudly."""
        body = codec.encode_frame({"kind": "x", "k": [1, 2]}, b"payload!")
        for cut in range(14, len(body)):
            with pytest.raises(CodecError, match="truncated"):
                codec.decode_frame(body[:cut])

    def test_trailing_garbage_rejected(self):
        body = codec.encode_frame({"kind": "x"}, b"p")
        with pytest.raises(CodecError, match="oversized"):
            codec.decode_frame(body + b"\x00")

    def test_bad_magic(self):
        body = bytearray(codec.encode_frame({"kind": "x"}))
        body[:4] = b"HTTP"
        with pytest.raises(CodecError, match="magic"):
            codec.decode_frame(bytes(body))

    def test_version_mismatch(self):
        good = codec.encode_frame({"kind": "x"})
        bumped = good[:4] + struct.pack("<H", codec.CODEC_VERSION + 1) + good[6:]
        with pytest.raises(CodecError, match="version mismatch"):
            codec.decode_frame(bumped)

    def test_header_not_json(self):
        head = b"not json!!"
        body = struct.pack("<4sHII", codec.MAGIC, codec.CODEC_VERSION,
                           len(head), 0) + head
        with pytest.raises(CodecError, match="not valid JSON"):
            codec.decode_frame(body)

    def test_header_without_kind(self):
        head = json.dumps({"no": "kind"}).encode()
        body = struct.pack("<4sHII", codec.MAGIC, codec.CODEC_VERSION,
                           len(head), 0) + head
        with pytest.raises(CodecError, match="'kind'"):
            codec.decode_frame(body)

    def test_absurd_header_length_rejected(self):
        body = struct.pack("<4sHII", codec.MAGIC, codec.CODEC_VERSION,
                           codec.MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(CodecError, match="corrupt"):
            codec.decode_frame(body)


class TestArrayFrames:
    @pytest.mark.parametrize("dtype", ["<f8", "<f4", "<i8", "<i4", "<u2", "<f2"])
    @pytest.mark.parametrize("shape", [(), (1,), (7,), (2, 3), (3, 4, 5), (0, 4)])
    def test_round_trip_bitwise(self, dtype, shape):
        rng = np.random.default_rng(hash((dtype, shape)) % (2**32))
        raw = rng.integers(0, 256, size=int(np.prod(shape)) * np.dtype(dtype).itemsize,
                           dtype=np.uint8)
        values = np.frombuffer(raw.tobytes(), dtype=dtype).reshape(shape)
        decoded = codec.decode_array(codec.encode_array(values))
        assert decoded.dtype == np.dtype(dtype)
        assert decoded.shape == shape
        # Byte-level equality: NaN payload bits, -0.0, denormals all survive.
        assert decoded.tobytes() == values.tobytes()

    def test_nan_and_inf_payloads(self):
        values = np.array([np.nan, -np.nan, np.inf, -np.inf, -0.0, 1e-310])
        decoded = codec.decode_array(codec.encode_array(values))
        assert decoded.tobytes() == values.tobytes()

    def test_big_endian_input_normalised(self):
        values = np.arange(6, dtype=">f8").reshape(2, 3)
        decoded = codec.decode_array(codec.encode_array(values))
        assert decoded.dtype == np.dtype("<f8")
        assert np.array_equal(decoded, values.astype("<f8"))

    def test_non_contiguous_input(self):
        base = np.arange(24, dtype="<f8").reshape(4, 6)
        view = base[::2, ::3]
        decoded = codec.decode_array(codec.encode_array(view))
        assert np.array_equal(decoded, view)

    def test_payload_length_mismatch(self):
        body = bytearray(codec.encode_array(np.zeros(4)))
        # Shrink the payload but fix up the declared length so the frame
        # layer passes and the array layer has to catch it.
        header, _payload = codec.decode_frame(bytes(body))
        tampered = codec.encode_frame(header, b"\x00" * 7)
        with pytest.raises(CodecError, match="payload is 7 bytes"):
            codec.decode_array(tampered)

    def test_error_frame_surfaces_as_exception(self):
        with pytest.raises(QueueFull):
            codec.decode_array(codec.encode_error("queue_full", "busy"))

    def test_wrong_kind(self):
        with pytest.raises(CodecError, match="expected an array frame"):
            codec.decode_array(codec.encode_request([1]))


class TestRequestFrames:
    @pytest.mark.parametrize("starts", [[0], [5, 2, 5], list(range(100)), [-3]])
    def test_round_trip(self, starts):
        assert codec.decode_request(codec.encode_request(starts)) == starts

    def test_numpy_starts(self):
        assert codec.decode_request(
            codec.encode_request(np.array([4, 2], dtype=np.int64))
        ) == [4, 2]

    def test_empty_rejected(self):
        with pytest.raises(InvalidRequest, match="non-empty"):
            codec.decode_request(codec.encode_frame({"kind": "forecast", "starts": []}))

    def test_missing_starts_rejected(self):
        with pytest.raises(InvalidRequest):
            codec.decode_request(codec.encode_frame({"kind": "forecast"}))

    @pytest.mark.parametrize("starts", [[1.5], ["3"], [True], [None], "12"])
    def test_non_integer_starts_rejected(self, starts):
        body = codec.encode_frame({"kind": "forecast", "starts": starts})
        with pytest.raises(InvalidRequest):
            codec.decode_request(body)


class TestErrorFrames:
    @pytest.mark.parametrize("code,cls,status", [
        ("queue_full", QueueFull, 503),
        ("not_ready", ServingError, 503),
        ("model_not_found", ModelNotFound, 404),
        ("invalid_request", InvalidRequest, 400),
        ("codec_error", CodecError, 400),
        ("body_too_large", InvalidRequest, 413),
        ("internal", ServingError, 500),
    ])
    def test_code_table(self, code, cls, status):
        assert codec.ERROR_CODES[code][0] is cls
        assert codec.ERROR_CODES[code][1] == status
        header, _ = codec.decode_frame(codec.encode_error(code, "boom"))
        exc = codec.decode_error(header)
        assert isinstance(exc, cls)
        assert "boom" in str(exc)

    def test_unknown_code_refused_at_encode(self):
        with pytest.raises(ValueError, match="unknown error code"):
            codec.encode_error("made_up", "x")

    def test_unknown_code_decodes_to_base_class(self):
        exc = codec.decode_error({"kind": "error", "code": "future_code",
                                  "message": "hm"})
        assert type(exc) is ServingError

    @pytest.mark.parametrize("exc,code,status", [
        (QueueFull("q"), "queue_full", 503),
        (ModelNotFound("m"), "model_not_found", 404),
        (CodecError("c"), "codec_error", 400),
        (InvalidRequest("i"), "invalid_request", 400),
        (ServingError("s"), "internal", 500),
        (RuntimeError("r"), "internal", 500),
    ])
    def test_exception_to_error(self, exc, code, status):
        assert codec.exception_to_error(exc) == (code, status)


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(QueueFull, ServingError)
        assert issubclass(ModelNotFound, ServingError)
        assert issubclass(InvalidRequest, ServingError)
        assert issubclass(CodecError, InvalidRequest)
        assert issubclass(ServingError, RuntimeError)

    def test_builtin_compatibility(self):
        """Pre-taxonomy callers caught KeyError / ValueError; keep that."""
        assert issubclass(ModelNotFound, KeyError)
        assert issubclass(InvalidRequest, ValueError)

    def test_model_not_found_renders_plainly(self):
        # KeyError.__str__ would repr-quote the message.
        assert str(ModelNotFound("unknown model key 'x'")) == "unknown model key 'x'"
