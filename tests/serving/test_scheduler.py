"""MicroBatchScheduler: batching triggers, backpressure, lifecycle, parity."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.baselines import IGNNKForecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_pems_bay
from repro.evaluation import forecast_window_starts
from repro.interfaces import FitReport, Forecaster
from repro.serving import LoadGenerator, LoadSpec, MicroBatchScheduler, QueueFull
from repro.serving.service import ForecastService


class _CountingForecaster(Forecaster):
    """Deterministic toy model that records every predict() batch."""

    name = "counting"

    def __init__(self, horizon: int = 4, num_unobserved: int = 3) -> None:
        self.horizon = horizon
        self.num_unobserved = num_unobserved
        self.calls: list[np.ndarray] = []
        self._lock = threading.Lock()

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        return FitReport()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        window_starts = np.asarray(window_starts, dtype=int)
        with self._lock:
            self.calls.append(window_starts.copy())
        grid = np.arange(self.horizon)[:, None] + np.arange(self.num_unobserved)[None, :]
        return window_starts[:, None, None] * 1000.0 + grid[None]


class _GatedForecaster(_CountingForecaster):
    """Toy model whose first predict call blocks until released."""

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        self.entered.set()
        assert self.release.wait(timeout=10), "test forgot to release the gate"
        return super().predict(window_starts)


class _FaultyForecaster(_CountingForecaster):
    """Raises for one poisoned window start."""

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        if 13 in np.asarray(window_starts, dtype=int):
            raise RuntimeError("poisoned window")
        return super().predict(window_starts)


class TestBatchingTriggers:
    def test_forecast_matches_direct_predict(self):
        model = _CountingForecaster()
        with MicroBatchScheduler(model, deadline_ms=1.0) as scheduler:
            out = scheduler.forecast(np.array([5, 3, 5, 9]))
        expected = _CountingForecaster().predict(np.array([5, 3, 5, 9]))
        assert np.array_equal(out, expected)

    def test_max_batch_dispatches_before_deadline(self):
        model = _CountingForecaster()
        # Deadline far beyond the test timeout: only the max-batch
        # trigger can dispatch this batch promptly.
        with MicroBatchScheduler(model, deadline_ms=60_000.0, max_batch=4) as scheduler:
            handles = [scheduler.submit(s) for s in (4, 1, 3, 2)]
            results = [h.result(timeout=10) for h in handles]
            assert results[0][0, 0] == pytest.approx(4000.0)
            stats = scheduler.stats
        assert stats["batches"] == 1
        assert stats["max_batch_observed"] == 4
        # The one predict call saw the dedup-sorted batch.
        assert model.calls[0].tolist() == [1, 2, 3, 4]

    def test_deadline_dispatches_partial_batch(self):
        model = _CountingForecaster()
        with MicroBatchScheduler(model, deadline_ms=20.0, max_batch=64) as scheduler:
            began = time.perf_counter()
            value = scheduler.submit(7).result(timeout=10)
            elapsed = time.perf_counter() - began
        assert value[0, 0] == pytest.approx(7000.0)
        # One lone request is held at most ~deadline before dispatch.
        assert elapsed < 5.0
        assert model.calls[0].tolist() == [7]

    def test_repeat_traffic_hits_cache(self):
        model = _CountingForecaster()
        with MicroBatchScheduler(model, deadline_ms=1.0) as scheduler:
            scheduler.forecast(np.array([1, 2, 3]))
            scheduler.forecast(np.array([3, 2, 1]))
            stats = scheduler.stats
        assert stats["service"]["windows_computed"] == 3
        assert stats["service"]["cache_hits"] >= 3

    def test_direct_caller_shares_service_with_scheduler(self):
        """Service intake is locked: direct forecast() + worker flushes coexist."""
        model = _CountingForecaster()
        service = ForecastService(model, cache_size=64)
        errors = []

        def direct_caller():
            try:
                for i in range(60):
                    out = service.forecast(np.array([i % 7]))
                    assert out[0, 0, 0] == pytest.approx((i % 7) * 1000.0)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        with MicroBatchScheduler(service, deadline_ms=1.0) as scheduler:
            thread = threading.Thread(target=direct_caller)
            thread.start()
            for i in range(60):
                value = scheduler.submit(i % 5).result(timeout=10)
                assert value[0, 0] == pytest.approx((i % 5) * 1000.0)
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert not errors

    def test_wraps_existing_service(self):
        model = _CountingForecaster()
        service = ForecastService(model, cache_size=32)
        service.forecast(np.array([1, 2]))  # warm directly
        with MicroBatchScheduler(service, deadline_ms=1.0) as scheduler:
            assert scheduler.service is service
            scheduler.forecast(np.array([1, 2]))
            stats = scheduler.stats
        # The scheduler served the warm windows from the shared cache.
        assert stats["service"]["cache_hits"] >= 2
        assert len(model.calls) == 1

    def test_existing_service_kwargs_coupling(self):
        service = ForecastService(_CountingForecaster(), cache_size=8)
        # cache_size cannot retarget an already-sized service cache.
        with pytest.raises(ValueError, match="cache_size"):
            MicroBatchScheduler(service, cache_size=16)
        # log_batches=True enables the parity log on the wrapped service.
        with MicroBatchScheduler(service, deadline_ms=1.0, log_batches=True) as scheduler:
            scheduler.forecast(np.array([1, 2]))
        assert [b.tolist() for b in service.batch_log] == [[1, 2]]


class TestAdmissionControl:
    def test_reject_policy_raises_queue_full(self):
        model = _GatedForecaster()
        scheduler = MicroBatchScheduler(
            model, deadline_ms=0.0, max_batch=1, max_queue=2, admission="reject"
        )
        try:
            first = scheduler.submit(1)  # worker takes it and blocks in predict
            assert model.entered.wait(timeout=10)
            queued = [scheduler.submit(2), scheduler.submit(3)]  # fills the queue
            with pytest.raises(QueueFull):
                scheduler.submit(4)
            assert scheduler.stats["rejected"] == 1
            model.release.set()
            assert first.result(timeout=10)[0, 0] == pytest.approx(1000.0)
            assert [h.result(timeout=10)[0, 0] for h in queued] == [2000.0, 3000.0]
        finally:
            model.release.set()
            scheduler.shutdown()

    def test_block_policy_applies_backpressure(self):
        model = _GatedForecaster()
        scheduler = MicroBatchScheduler(
            model, deadline_ms=0.0, max_batch=1, max_queue=1, admission="block"
        )
        try:
            first = scheduler.submit(1)
            assert model.entered.wait(timeout=10)
            second = scheduler.submit(2)  # fills the queue
            third_handle = []

            def blocked_submit():
                third_handle.append(scheduler.submit(3))

            submitter = threading.Thread(target=blocked_submit)
            submitter.start()
            submitter.join(timeout=0.3)
            assert submitter.is_alive(), "submit should block while the queue is full"
            model.release.set()
            submitter.join(timeout=10)
            assert not submitter.is_alive()
            for handle, expected in ((first, 1000.0), (second, 2000.0), (third_handle[0], 3000.0)):
                assert handle.result(timeout=10)[0, 0] == pytest.approx(expected)
        finally:
            model.release.set()
            scheduler.shutdown()

    def test_invalid_parameters_rejected(self):
        model = _CountingForecaster()
        with pytest.raises(ValueError):
            MicroBatchScheduler(model, admission="drop")
        with pytest.raises(ValueError):
            MicroBatchScheduler(model, deadline_ms=-1.0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(model, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(model, max_queue=0)

    def test_empty_forecast_rejected(self):
        with MicroBatchScheduler(_CountingForecaster(), deadline_ms=1.0) as scheduler:
            with pytest.raises(ValueError):
                scheduler.forecast(np.array([], dtype=int))


class TestLifecycle:
    def test_shutdown_drains_queued_requests(self):
        model = _CountingForecaster()
        scheduler = MicroBatchScheduler(model, deadline_ms=50.0)
        handles = [scheduler.submit(s) for s in range(6)]
        scheduler.shutdown()  # drain=True: everything queued is served
        assert all(h.done() for h in handles)
        assert handles[5].result()[0, 0] == pytest.approx(5000.0)
        with pytest.raises(RuntimeError):
            scheduler.submit(7)

    def test_shutdown_is_idempotent(self):
        scheduler = MicroBatchScheduler(_CountingForecaster(), deadline_ms=1.0)
        scheduler.shutdown()
        scheduler.shutdown()

    def test_shutdown_without_drain_fails_queued(self):
        model = _GatedForecaster()
        scheduler = MicroBatchScheduler(model, deadline_ms=0.0, max_batch=1)
        in_flight = scheduler.submit(1)
        assert model.entered.wait(timeout=10)
        queued = scheduler.submit(2)
        scheduler.shutdown(drain=False, timeout=0.5)
        with pytest.raises(RuntimeError, match="shut down before serving"):
            queued.result(timeout=10)
        # The batch already being predicted still completes.
        model.release.set()
        assert in_flight.result(timeout=10)[0, 0] == pytest.approx(1000.0)

    def test_drain_is_a_completion_barrier(self):
        model = _CountingForecaster()
        with MicroBatchScheduler(model, deadline_ms=5.0) as scheduler:
            handles = [scheduler.submit(s) for s in range(8)]
            assert scheduler.drain(timeout=10)
            assert all(h.done() for h in handles)

    def test_predict_error_fails_batch_but_not_scheduler(self):
        model = _FaultyForecaster()
        with MicroBatchScheduler(model, deadline_ms=1.0) as scheduler:
            poisoned = scheduler.submit(13)
            with pytest.raises(RuntimeError, match="poisoned"):
                poisoned.result(timeout=10)
            # Scheduler survives and serves later traffic.
            assert scheduler.submit(2).result(timeout=10)[0, 0] == pytest.approx(2000.0)
            stats = scheduler.stats
        assert stats["failed"] >= 1
        assert stats["completed"] >= 1


class TestConcurrentParity:
    def test_threaded_hammer_bitwise_parity_toy(self):
        """Many submitter threads, mixed hit/miss Zipf traffic, bitwise parity."""
        model = _CountingForecaster()
        reference = {
            s: _CountingForecaster().predict(np.asarray([s]))[0] for s in range(12)
        }
        with MicroBatchScheduler(model, deadline_ms=1.0, max_batch=16) as scheduler:
            spec = LoadSpec(num_threads=8, requests_per_thread=60, zipf_exponent=1.1, seed=3)
            report = LoadGenerator(list(range(12)), spec).run(
                lambda s: scheduler.submit(s).result()
            )
            scheduler.drain()
            stats = scheduler.stats
        for per_thread in report.results:
            for start, value in per_thread:
                assert np.array_equal(value, reference[start])
        assert stats["completed"] == spec.num_threads * spec.requests_per_thread
        assert stats["service"]["cache_hits"] > 0  # mixed hit/miss traffic
        # Micro-batching actually happened: far fewer batches than requests.
        assert stats["batches"] < stats["completed"]

    def test_threaded_hammer_bitwise_parity_ignnk(self):
        """Real fitted model under concurrent load equals serial direct predict."""
        dataset = make_pems_bay(num_sensors=18, num_days=2, seed=11)
        split = space_split(dataset.coords, "horizontal")
        spec = WindowSpec(input_length=6, horizon=6)
        train_ix, _ = temporal_split(dataset.num_steps)
        model = IGNNKForecaster(iterations=5, hidden=8)
        model.fit(dataset, split, spec, train_ix)
        starts = forecast_window_starts(dataset, spec, max_windows=10)
        # IGNNK's predict is batch-composition invariant (asserted in
        # test_service), so serial per-window calls are the bitwise
        # reference for any batching the scheduler performs.
        reference = {int(s): model.predict(np.asarray([s]))[0] for s in starts}
        with MicroBatchScheduler(model, deadline_ms=2.0) as scheduler:
            load = LoadSpec(num_threads=8, requests_per_thread=25, zipf_exponent=1.2, seed=5)
            report = LoadGenerator([int(s) for s in starts], load).run(
                lambda s: scheduler.submit(s).result()
            )
        for per_thread in report.results:
            for start, value in per_thread:
                assert np.array_equal(value, reference[start])


class TestCacheFastPath:
    """Opt-in cache-hit fast path: hits served on the submitting thread."""

    def test_hit_skips_queue_and_predict(self):
        model = _CountingForecaster()
        with MicroBatchScheduler(model, deadline_ms=1.0,
                                 cache_fast_path=True) as scheduler:
            cold = scheduler.submit(7).result()
            calls_after_cold = len(model.calls)
            handle = scheduler.submit(7)
            assert handle.done()  # resolved before any worker involvement
            hot = handle.result()
            assert np.array_equal(hot, cold)
            assert len(model.calls) == calls_after_cold  # no new predict
            stats = scheduler.stats
            assert stats["fast_hits"] == 1
            assert stats["completed"] == 2
            assert stats["submitted"] == 2

    def test_fast_hit_bypasses_admission_control(self):
        """A hit must be servable even while the queue is full."""
        model = _GatedForecaster()
        with MicroBatchScheduler(model, deadline_ms=0.0, max_batch=1,
                                 max_queue=1, admission="reject",
                                 cache_fast_path=True) as scheduler:
            model.release.set()
            warm = scheduler.submit(3).result()  # cached now
            scheduler.drain()
            model.release.clear()
            model.entered.clear()
            in_flight = scheduler.submit(100)  # worker blocks in predict
            assert model.entered.wait(5.0)
            queued = scheduler.submit(101)  # fills the queue
            with pytest.raises(QueueFull):
                scheduler.submit(102)  # miss: rejected
            assert np.array_equal(scheduler.submit(3).result(), warm)  # hit: served
            model.release.set()
            in_flight.result(10.0)
            queued.result(10.0)

    def test_off_by_default(self):
        model = _CountingForecaster()
        with MicroBatchScheduler(model, deadline_ms=1.0) as scheduler:
            scheduler.submit(7).result()
            scheduler.submit(7).result()
            assert scheduler.stats["fast_hits"] == 0
            assert scheduler.stats["service"]["cache_hits"] == 1

    def test_bytes_identical_to_queue_path(self):
        model = _CountingForecaster()
        with MicroBatchScheduler(model, deadline_ms=1.0) as queued:
            via_queue = [queued.submit(s).result() for s in (1, 2, 1, 2)]
        model2 = _CountingForecaster()
        with MicroBatchScheduler(model2, deadline_ms=1.0,
                                 cache_fast_path=True) as fast:
            via_fast = [fast.submit(s).result() for s in (1, 2, 1, 2)]
        for a, b in zip(via_queue, via_fast):
            assert np.array_equal(a, b)

    def test_shutdown_refuses_fast_hits_too(self):
        model = _CountingForecaster()
        scheduler = MicroBatchScheduler(model, deadline_ms=1.0,
                                        cache_fast_path=True)
        scheduler.submit(7).result()
        scheduler.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            scheduler.submit(7)

    def test_runtime_totals_fold_fast_hits(self):
        from repro.serving import ServingRuntime

        with ServingRuntime(deadline_ms=1.0, cache_fast_path=True) as runtime:
            runtime.register("a", _CountingForecaster())
            for _ in range(3):
                runtime.forecast("a", np.array([5]))
            stats = runtime.stats()
            assert stats["totals"]["fast_hits"] == 2
            assert stats["totals"]["cache_hits"] == 2
            assert stats["totals"]["cache_hit_pct"] == pytest.approx(100 * 2 / 3)
