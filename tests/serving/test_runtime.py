"""ServingRuntime: multi-model routing, lifecycle, aggregated stats."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.interfaces import FitReport, Forecaster
from repro.serving import LoadGenerator, LoadSpec, ServingRuntime


class _KeyedForecaster(Forecaster):
    """Toy model whose outputs are tagged by a per-model scale."""

    name = "keyed"

    def __init__(self, scale: float) -> None:
        self.scale = scale

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        return FitReport()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        window_starts = np.asarray(window_starts, dtype=int)
        grid = np.zeros((2, 3))
        return window_starts[:, None, None] * self.scale + grid[None]


class _UnfittedForecaster(Forecaster):
    name = "unfitted"
    _fitted = False

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        return FitReport()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        raise AssertionError("never reached")


class _SlowForecaster(Forecaster):
    """Fixed per-predict delay, so swaps overlap in-flight batches."""

    name = "slow"

    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        return FitReport()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        time.sleep(self.delay_s)
        starts = np.asarray(window_starts, dtype=float)
        return starts[:, None, None] + np.zeros((1, 2, 3))


class TestRouting:
    def test_requests_route_by_model_key(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("bay", _KeyedForecaster(1000.0))
            runtime.register("mel", _KeyedForecaster(7.0))
            assert runtime.models == ["bay", "mel"]
            assert "bay" in runtime and "missing" not in runtime
            bay = runtime.forecast("bay", np.array([3]))
            mel = runtime.forecast("mel", np.array([3]))
            assert bay[0, 0, 0] == pytest.approx(3000.0)
            assert mel[0, 0, 0] == pytest.approx(21.0)

    def test_unknown_key_raises_with_candidates(self):
        with ServingRuntime() as runtime:
            runtime.register("bay", _KeyedForecaster(1.0))
            with pytest.raises(KeyError, match=r"unknown model key 'nope'.*bay"):
                runtime.submit("nope", 0)

    def test_duplicate_key_rejected(self):
        with ServingRuntime() as runtime:
            runtime.register("bay", _KeyedForecaster(1.0))
            with pytest.raises(ValueError, match="already registered"):
                runtime.register("bay", _KeyedForecaster(2.0))

    def test_unfitted_model_rejected_at_register(self):
        with ServingRuntime() as runtime:
            with pytest.raises(RuntimeError):
                runtime.register("bad", _UnfittedForecaster())

    def test_register_accepts_prebuilt_service(self):
        from repro.serving import ForecastService

        service = ForecastService(_KeyedForecaster(5.0), cache_size=8)
        with ServingRuntime(deadline_ms=1.0, cache_size=128) as runtime:
            scheduler = runtime.register("bay", service)
            assert scheduler.service is service
            assert runtime.forecast("bay", np.array([2]))[0, 0, 0] == pytest.approx(10.0)
            # An explicit per-model cache_size override still surfaces
            # the incompatibility.
            with pytest.raises(ValueError, match="cache_size"):
                runtime.register(
                    "other", ForecastService(_KeyedForecaster(1.0)), cache_size=16
                )

    def test_per_model_scheduler_overrides(self):
        with ServingRuntime(max_queue=1024) as runtime:
            scheduler = runtime.register(
                "bay", _KeyedForecaster(1.0), max_queue=3, admission="reject"
            )
            assert scheduler.max_queue == 3
            assert scheduler.admission == "reject"


class TestLifecycle:
    def test_warm_up_populates_cache_through_serving_path(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("bay", _KeyedForecaster(10.0))
            cached = runtime.warm_up("bay", np.arange(6))
            assert cached == 6
            runtime.forecast("bay", np.arange(6))  # all warm now
            stats = runtime.stats("bay")
            assert stats["service"]["cache_hits"] >= 6

    def test_drain_all_models(self):
        with ServingRuntime(deadline_ms=5.0) as runtime:
            runtime.register("a", _KeyedForecaster(1.0))
            runtime.register("b", _KeyedForecaster(2.0))
            handles = [runtime.submit("a", s) for s in range(4)]
            handles += [runtime.submit("b", s) for s in range(4)]
            assert runtime.drain(timeout=10)
            assert all(h.done() for h in handles)

    def test_shutdown_stops_all_models_and_register(self):
        runtime = ServingRuntime(deadline_ms=1.0)
        runtime.register("a", _KeyedForecaster(1.0))
        runtime.shutdown()
        with pytest.raises(RuntimeError):
            runtime.submit("a", 0)
        with pytest.raises(RuntimeError, match="shut down"):
            runtime.register("b", _KeyedForecaster(2.0))

    def test_context_manager_shuts_down(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("a", _KeyedForecaster(1.0))
        with pytest.raises(RuntimeError):
            runtime.submit("a", 0)

    def test_unknown_key_is_model_not_found(self):
        from repro.serving import ModelNotFound, ServingError

        with ServingRuntime() as runtime:
            with pytest.raises(ModelNotFound) as excinfo:
                runtime.submit("nope", 0)
        # The taxonomy member is both a ServingError and (compat) KeyError.
        assert isinstance(excinfo.value, ServingError)
        assert isinstance(excinfo.value, KeyError)


class _GatedForecaster(Forecaster):
    """Predict blocks until released, so a drain can be held open."""

    name = "gated"

    def __init__(self) -> None:
        self.release = threading.Event()
        self.entered = threading.Event()

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        return FitReport()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        self.entered.set()
        assert self.release.wait(10.0), "gate never released"
        return np.zeros((len(np.asarray(window_starts)), 2, 3))


class TestDrainLifecycleRace:
    """register()/shutdown() during an in-flight drain() must raise, not
    corrupt the scheduler map (a model registered mid-drain would escape
    the barrier; a shutdown mid-drain would fail promised requests)."""

    def _draining_runtime(self):
        model = _GatedForecaster()
        runtime = ServingRuntime(deadline_ms=0.0, max_batch=1)
        runtime.register("gated", model)
        handle = runtime.submit("gated", 0)
        assert model.entered.wait(5.0)  # the batch is being predicted

        drained = threading.Event()
        outcome = {}

        def drain():
            outcome["ok"] = runtime.drain(timeout=10.0)
            drained.set()

        drainer = threading.Thread(target=drain, daemon=True)
        drainer.start()
        # The drain is now parked on the in-flight batch.
        deadline = time.monotonic() + 5.0
        while not runtime._draining:
            assert time.monotonic() < deadline, "drain never started"
            time.sleep(0.005)
        return runtime, model, handle, drained, outcome

    def test_register_during_drain_raises(self):
        runtime, model, handle, drained, outcome = self._draining_runtime()
        try:
            with pytest.raises(RuntimeError, match="drain\\(\\) is in flight"):
                runtime.register("late", _KeyedForecaster(1.0))
        finally:
            model.release.set()
        assert drained.wait(10.0) and outcome["ok"]
        assert handle.result(5.0).shape == (2, 3)
        # After the barrier releases, registration works again.
        runtime.register("late", _KeyedForecaster(1.0))
        assert "late" in runtime
        runtime.shutdown()

    def test_shutdown_during_drain_raises(self):
        runtime, model, handle, drained, outcome = self._draining_runtime()
        try:
            with pytest.raises(RuntimeError, match="drain\\(\\) is in flight"):
                runtime.shutdown()
        finally:
            model.release.set()
        assert drained.wait(10.0) and outcome["ok"]
        assert handle.result(5.0).shape == (2, 3)
        runtime.shutdown()  # clean afterwards
        assert runtime.models == ["gated"]

    def test_concurrent_drains_are_allowed(self):
        model = _GatedForecaster()
        runtime = ServingRuntime(deadline_ms=0.0, max_batch=1)
        runtime.register("gated", model)
        runtime.submit("gated", 0)
        assert model.entered.wait(5.0)
        results = []
        drainers = [
            threading.Thread(target=lambda: results.append(runtime.drain(timeout=10.0)))
            for _ in range(3)
        ]
        for t in drainers:
            t.start()
        model.release.set()
        for t in drainers:
            t.join(timeout=10.0)
        assert results == [True, True, True]
        runtime.shutdown()


class TestStats:
    def test_per_model_and_total_telemetry(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("a", _KeyedForecaster(1.0))
            runtime.register("b", _KeyedForecaster(2.0))
            pool = [("a", s) for s in range(5)] + [("b", s) for s in range(5)]
            spec = LoadSpec(num_threads=4, requests_per_thread=30, zipf_exponent=1.0, seed=2)
            LoadGenerator(pool, spec).run(
                lambda item: runtime.submit(item[0], item[1]).result(),
                collect_results=False,
            )
            runtime.drain()
            stats = runtime.stats()
        per_model, totals = stats["models"], stats["totals"]
        assert set(per_model) == {"a", "b"}
        assert totals["models"] == 2
        assert totals["completed"] == 4 * 30
        assert totals["completed"] == sum(s["completed"] for s in per_model.values())
        assert totals["cache_hit_pct"] > 0.0
        for s in per_model.values():
            latency = s["latency"]
            assert latency["count"] == s["completed"]
            assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
            assert s["throughput_rps"] is None or s["throughput_rps"] > 0
            assert s["queue_depth"] == 0  # drained

    def test_empty_scheduler_latency_summary(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("a", _KeyedForecaster(1.0))
            stats = runtime.stats("a")
        assert stats["latency"]["count"] == 0
        assert stats["latency"]["p50_ms"] is None
        assert stats["throughput_rps"] is None


class TestBlueGreenSwap:
    def test_replace_swaps_atomically(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("bay", _KeyedForecaster(1.0))
            assert runtime.forecast("bay", np.array([5]))[0, 0, 0] == pytest.approx(5.0)
            runtime.register("bay", _KeyedForecaster(100.0), replace=True)
            assert runtime.forecast("bay", np.array([5]))[0, 0, 0] == pytest.approx(500.0)
            assert runtime.models == ["bay"]

    def test_replace_without_existing_is_plain_register(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("bay", _KeyedForecaster(2.0), replace=True)
            assert runtime.forecast("bay", np.array([3]))[0, 0, 0] == pytest.approx(6.0)
            assert "swaps" not in runtime.stats()

    def test_duplicate_error_mentions_replace(self):
        with ServingRuntime() as runtime:
            runtime.register("bay", _KeyedForecaster(1.0))
            with pytest.raises(ValueError, match="replace=True"):
                runtime.register("bay", _KeyedForecaster(2.0))

    def test_swap_drains_old_scheduler_and_folds_counters(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("bay", _KeyedForecaster(1.0))
            handles = [runtime.submit("bay", s) for s in range(6)]
            runtime.register("bay", _KeyedForecaster(10.0), replace=True)
            # Requests accepted pre-swap were served (by the old model)
            # before its scheduler shut down.
            assert all(h.done() for h in handles)
            assert [h.result()[0, 0] for h in handles] == [float(s) for s in range(6)]
            stats = runtime.stats()
            swaps = stats["swaps"]
            assert swaps["count"] == 1
            assert swaps["by_model"] == {"bay": 1}
            assert swaps["retired"]["completed"] == 6
            assert swaps["retired"]["failed"] == 0
            record = swaps["history"][-1]
            assert record["model"] == "bay"
            assert record["drain_seconds"] >= 0
            # The live scheduler's counters started over.
            assert stats["models"]["bay"]["submitted"] == 0

    def test_concurrent_submits_survive_swap(self):
        """Regression: a submit racing the swap (old scheduler's intake
        already closed) is transparently resubmitted, never dropped."""
        with ServingRuntime(deadline_ms=0.5, max_queue=4096) as runtime:
            runtime.register("bay", _SlowForecaster(0.002))
            errors: list[Exception] = []
            stop = threading.Event()

            def hammer() -> None:
                i = 0
                while not stop.is_set():
                    try:
                        runtime.submit("bay", i).result()
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)
                        return
                    i += 1

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for _ in range(4):
                time.sleep(0.03)
                runtime.register("bay", _SlowForecaster(0.002), replace=True)
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors, f"swap dropped a request: {errors[:3]}"
            stats = runtime.stats()
            retired, live = stats["swaps"]["retired"], stats["totals"]
            assert retired["failed"] == 0 and live["failed"] == 0
            assert (retired["submitted"] + live["submitted"]
                    == retired["completed"] + live["completed"])

    def test_queue_full_is_not_retried_as_a_swap(self):
        with ServingRuntime(deadline_ms=50.0, max_queue=1,
                            admission="reject") as runtime:
            from repro.serving import QueueFull

            runtime.register("bay", _SlowForecaster(0.05))
            accepted = runtime.submit("bay", 0)
            with pytest.raises(QueueFull):
                for s in range(1, 50):
                    runtime.submit("bay", s)
            accepted.result()


class TestStatsSections:
    def test_attached_store_section(self):
        from repro.engine import ArtifactStore

        store = ArtifactStore()
        store.put("dtw_pair", b"k", np.arange(3.0))
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("a", _KeyedForecaster(1.0))
            assert "store" not in runtime.stats()
            runtime.attach_store(store)
            section = runtime.stats()["store"]
            assert section["namespaces"]["dtw_pair"]["memory_items"] == 1
            assert section["namespaces"]["dtw_pair"]["memory_bytes"] == 24

    def test_named_provider_section_and_errors(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("a", _KeyedForecaster(1.0))
            runtime.add_stats_source("streaming", lambda: {"deploys": 3})
            assert runtime.stats()["streaming"] == {"deploys": 3}

            def broken():
                raise RuntimeError("boom")

            runtime.add_stats_source("flaky", broken)
            assert runtime.stats()["flaky"] == {"error": "RuntimeError: boom"}

    def test_reserved_section_names_rejected(self):
        with ServingRuntime() as runtime:
            for name in ("models", "totals", "store", "swaps", "metrics"):
                with pytest.raises(ValueError, match="reserved"):
                    runtime.add_stats_source(name, dict)

    def test_raising_attached_store_degrades_to_error_stanza(self):
        """A wedged store's stats read must not take stats() down."""

        class _BrokenStore:
            @property
            def stats(self):
                raise OSError("disk gone")

        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("a", _KeyedForecaster(1.0))
            runtime.attach_store(_BrokenStore())
            stats = runtime.stats()
            assert stats["store"] == {"error": "OSError: disk gone"}
            # The rest of the payload is intact.
            assert "a" in stats["models"]
            assert "metrics" in stats

    def test_raising_provider_does_not_hide_later_sections(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("a", _KeyedForecaster(1.0))

            def broken():
                raise ValueError("nope")

            runtime.add_stats_source("first", broken)
            runtime.add_stats_source("second", lambda: {"ok": True})
            stats = runtime.stats()
            assert stats["first"] == {"error": "ValueError: nope"}
            assert stats["second"] == {"ok": True}
