"""HTTP transport end-to-end: server + client over a real socket."""

from __future__ import annotations

import http.client
import threading
import time

import numpy as np
import pytest

from repro.interfaces import FitReport, Forecaster
from repro.serving import (
    InvalidRequest,
    LoadGenerator,
    LoadSpec,
    ModelNotFound,
    QueueFull,
    ServingError,
    ServingRuntime,
    WireDriver,
)
from repro.serving.transport import (
    CodecError,
    ForecastClient,
    ForecastHTTPServer,
    codec,
)


class _Affine(Forecaster):
    """Deterministic, batch-invariant toy model: start * scale + grid."""

    name = "affine"

    def __init__(self, scale: float = 1.0) -> None:
        self.scale = scale

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        return FitReport()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        window_starts = np.asarray(window_starts, dtype=int)
        grid = np.arange(6, dtype=float).reshape(2, 3)
        return window_starts[:, None, None] * self.scale + grid[None]


class _Gated(Forecaster):
    """Predict blocks until released — deterministic queue-full setups."""

    name = "gated"

    def __init__(self) -> None:
        self.release = threading.Event()
        self.entered = threading.Event()

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        return FitReport()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        self.entered.set()
        assert self.release.wait(10.0), "test forgot to release the gate"
        return np.zeros((len(np.asarray(window_starts)), 2, 3))


@pytest.fixture()
def served():
    """A ready two-model server plus a client wired to it."""
    with ServingRuntime(deadline_ms=1.0, log_batches=True) as runtime:
        runtime.register("toy/a", _Affine(1000.0))
        runtime.register("toy/b", _Affine(7.0))
        with ForecastHTTPServer(runtime).start() as server:
            server.set_ready()
            with ForecastClient("127.0.0.1", server.port,
                                retries=2, backoff_s=0.01) as client:
                yield runtime, server, client


class TestForecastRoutes:
    def test_single_window_bitwise(self, served):
        _runtime, _server, client = served
        block = client.forecast_one("toy/a", 42)
        assert np.array_equal(block, _Affine(1000.0).predict(np.array([42]))[0])
        assert block.dtype == np.float64

    def test_many_windows_bitwise_with_duplicates(self, served):
        _runtime, _server, client = served
        starts = [3, 11, 3, 7]
        stacked = client.forecast("toy/b", starts)
        assert stacked.shape == (4, 2, 3)
        direct = _Affine(7.0).predict(np.asarray(starts))
        assert np.array_equal(stacked, direct)

    def test_routes_by_model(self, served):
        _runtime, _server, client = served
        a = client.forecast_one("toy/a", 2)
        b = client.forecast_one("toy/b", 2)
        assert a[0, 0] == 2000.0 and b[0, 0] == 14.0

    def test_connection_reuse(self, served):
        """Many requests through one client ride one kept-alive socket."""
        _runtime, _server, client = served
        for start in range(20):
            client.forecast_one("toy/a", start)
        assert client._conn is not None  # still the persistent connection

    def test_single_endpoint_rejects_batches(self, served):
        _runtime, server, _client = served
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/v1/forecast/toy/a",
                     body=codec.encode_request([1, 2, 3]),
                     headers={"Content-Type": codec.CONTENT_TYPE})
        response = conn.getresponse()
        body = response.read()
        conn.close()
        assert response.status == 400
        with pytest.raises(InvalidRequest, match="exactly one"):
            codec.decode_array(body)


class TestErrorMapping:
    def test_unknown_model_raises_model_not_found(self, served):
        _runtime, _server, client = served
        with pytest.raises(ModelNotFound, match="unknown model key"):
            client.forecast_one("toy/missing", 0)

    def test_garbage_body_raises_codec_error(self, served):
        _runtime, server, _client = served
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/v1/forecast/toy/a", body=b"definitely not a frame",
                     headers={"Content-Type": codec.CONTENT_TYPE})
        response = conn.getresponse()
        body = response.read()
        conn.close()
        assert response.status == 400
        with pytest.raises(CodecError):
            codec.decode_array(body)

    def test_version_mismatch_rejected(self, served):
        _runtime, server, _client = served
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request(
            "POST", "/v1/forecast/toy/a", body=codec.encode_request([1]),
            headers={"Content-Type": "application/x-repro-frame; version=999"},
        )
        response = conn.getresponse()
        body = response.read()
        conn.close()
        assert response.status == 400
        with pytest.raises(CodecError, match="version"):
            codec.decode_array(body)

    def test_rejected_body_does_not_desync_keepalive(self, served):
        """An error reply must consume the request body, or the next
        request on the same kept-alive connection parses stale bytes."""
        _runtime, server, _client = served
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request(
            "POST", "/v1/forecast/toy/a", body=codec.encode_request([1]),
            headers={"Content-Type": "application/x-repro-frame; version=999"},
        )
        response = conn.getresponse()
        response.read()
        assert response.status == 400
        # Same connection, now a valid request: must succeed cleanly.
        conn.request("POST", "/v1/forecast/toy/a",
                     body=codec.encode_request([5]),
                     headers={"Content-Type": codec.CONTENT_TYPE})
        response = conn.getresponse()
        body = response.read()
        conn.close()
        assert response.status == 200
        assert np.array_equal(codec.decode_array(body),
                              _Affine(1000.0).predict(np.array([5]))[0])

    def test_oversized_body_rejected(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("toy/a", _Affine())
            with ForecastHTTPServer(runtime, max_body_bytes=64).start() as server:
                server.set_ready()
                with ForecastClient("127.0.0.1", server.port, retries=0) as client:
                    with pytest.raises(InvalidRequest, match="exceeds"):
                        client.forecast("toy/a", list(range(1000)))

    def test_queue_full_maps_over_wire(self):
        model = _Gated()
        with ServingRuntime(deadline_ms=0.0, max_batch=1, max_queue=1,
                            admission="reject") as runtime:
            scheduler = runtime.register("gated", model)
            with ForecastHTTPServer(runtime).start() as server:
                server.set_ready()
                # Occupy the worker (one request being predicted) ...
                in_flight = scheduler.submit(0)
                assert model.entered.wait(5.0)
                # ... and fill the queue behind it.
                queued = scheduler.submit(1)
                with ForecastClient("127.0.0.1", server.port,
                                    retries=0) as client:
                    with pytest.raises(QueueFull):
                        client.forecast_one("gated", 2)
                model.release.set()
                in_flight.result(10.0)
                queued.result(10.0)

    def test_unknown_path_is_json_404(self, served):
        _runtime, server, _client = served
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("GET", "/v2/nothing")
        response = conn.getresponse()
        assert response.status == 404
        assert response.getheader("Content-Type") == "application/json"
        conn.close()


class TestReadinessGating:
    def test_forecasts_refused_until_ready(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("toy/a", _Affine())
            with ForecastHTTPServer(runtime).start() as server:
                with ForecastClient("127.0.0.1", server.port,
                                    retries=0) as client:
                    health = client.health()
                    assert health["ready"] is False
                    with pytest.raises(ServingError, match="warming up"):
                        client.forecast_one("toy/a", 0)
                    server.set_ready()
                    assert client.wait_ready(5.0)
                    client.forecast_one("toy/a", 0)

    def test_retry_rides_out_warmup(self):
        """A 503 not_ready answer is retried until the worker flips ready."""
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("toy/a", _Affine())
            with ForecastHTTPServer(runtime).start() as server:
                flipper = threading.Timer(0.15, server.set_ready)
                flipper.start()
                try:
                    with ForecastClient("127.0.0.1", server.port,
                                        retries=20, backoff_s=0.02) as client:
                        block = client.forecast_one("toy/a", 5)
                        assert block.shape == (2, 3)
                finally:
                    flipper.cancel()


class TestIntrospection:
    def test_models_and_stats(self, served):
        _runtime, server, client = served
        client.forecast_one("toy/a", 1)
        assert client.models() == ["toy/a", "toy/b"]
        stats = client.stats()
        assert stats["worker"] == "worker-0"
        assert stats["transport"]["requests"] >= 2
        assert stats["transport"]["bytes_out"] > 0
        assert "toy/a" in stats["runtime"]["models"]
        assert stats["runtime"]["totals"]["completed"] >= 1

    def test_batch_log_round_trip(self, served):
        runtime, _server, client = served
        client.forecast("toy/a", [4, 9])
        log = client.batch_log("toy/a")
        served_starts = {int(s) for batch in log for s in batch}
        assert {4, 9} <= served_starts
        # The wire view matches the in-process view.
        local = runtime.scheduler("toy/a").service.batch_log
        assert [b.tolist() for b in log] == [b.tolist() for b in local]

    def test_batch_log_404_when_logging_off(self):
        with ServingRuntime(deadline_ms=1.0, log_batches=False) as runtime:
            runtime.register("toy/a", _Affine())
            with ForecastHTTPServer(runtime).start() as server:
                server.set_ready()
                with ForecastClient("127.0.0.1", server.port,
                                    retries=0) as client:
                    with pytest.raises(ServingError, match="batch logging is off"):
                        client.batch_log("toy/a")


class TestWireLoadGeneration:
    def test_wire_driver_single_model_parity(self, served):
        _runtime, server, _client = served
        pool = list(range(12))
        spec = LoadSpec(num_threads=4, requests_per_thread=10, seed=3)
        with WireDriver("127.0.0.1", server.port, "toy/a") as driver:
            report = LoadGenerator(pool, spec).run(driver)
        assert report.num_requests == 40
        reference = _Affine(1000.0).predict(np.asarray(pool))
        for per_thread in report.results:
            for start, value in per_thread:
                assert np.array_equal(value, reference[pool.index(start)])

    def test_wire_driver_routed_items(self, served):
        _runtime, server, _client = served
        pool = [("toy/a", 1), ("toy/b", 1), ("toy/a", 5)]
        spec = LoadSpec(num_threads=2, requests_per_thread=6, seed=0)
        with WireDriver("127.0.0.1", server.port) as driver:
            report = LoadGenerator(pool, spec).run(driver)
        for per_thread in report.results:
            for (model, start), value in per_thread:
                scale = 1000.0 if model == "toy/a" else 7.0
                assert value[0, 0] == start * scale

    def test_wire_driver_uses_one_client_per_thread(self, served):
        _runtime, server, _client = served
        driver = WireDriver("127.0.0.1", server.port, "toy/a")
        spec = LoadSpec(num_threads=3, requests_per_thread=4, seed=1)
        LoadGenerator(list(range(6)), spec).run(driver)
        assert len(driver._clients) == 3
        driver.close()
        assert driver._clients == []


class TestServerLifecycle:
    def test_shutdown_idempotent_and_port_released(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("toy/a", _Affine())
            server = ForecastHTTPServer(runtime).start()
            port = server.port
            server.shutdown()
            server.shutdown()  # idempotent
            # The port is free again: a new server can bind it.
            rebound = ForecastHTTPServer(runtime, port=port)
            rebound.shutdown()

    def test_double_start_rejected(self):
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.register("toy/a", _Affine())
            with ForecastHTTPServer(runtime).start() as server:
                with pytest.raises(RuntimeError, match="already started"):
                    server.start()


def test_client_connection_error_after_shutdown():
    with ServingRuntime(deadline_ms=1.0) as runtime:
        runtime.register("toy/a", _Affine())
        server = ForecastHTTPServer(runtime).start()
        server.set_ready()
        port = server.port
        client = ForecastClient("127.0.0.1", port, retries=1, backoff_s=0.01)
        client.forecast_one("toy/a", 0)
        server.shutdown()
        # An established keep-alive connection still drains (its handler
        # thread outlives the listener — that is the graceful part), but
        # a fresh dial must fail cleanly through the retry loop.
        client.close()
        time.sleep(0.05)
        with pytest.raises(ServingError, match="could not reach"):
            client.forecast_one("toy/a", 1)
        client.close()
