"""Load generator: deterministic schedules, Zipf skew, threaded execution."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serving import LoadGenerator, LoadSpec
from repro.serving.loadgen import build_schedule, zipf_probabilities


class TestZipf:
    def test_probabilities_sum_to_one_and_decay(self):
        p = zipf_probabilities(20, 1.1)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) < 0)  # strictly less popular with rank

    def test_zero_exponent_is_uniform(self):
        p = zipf_probabilities(8, 0.0)
        assert np.allclose(p, 1.0 / 8)

    def test_invalid_pool_rejected(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)


class TestSchedule:
    def test_same_seed_same_schedule(self):
        spec = LoadSpec(num_threads=4, requests_per_thread=50, seed=9)
        a = build_schedule(list(range(10)), spec)
        b = build_schedule(list(range(10)), spec)
        assert a == b

    def test_different_seed_different_schedule(self):
        pool = list(range(10))
        a = build_schedule(pool, LoadSpec(num_threads=2, requests_per_thread=50, seed=1))
        b = build_schedule(pool, LoadSpec(num_threads=2, requests_per_thread=50, seed=2))
        assert a != b

    def test_threads_draw_distinct_streams(self):
        spec = LoadSpec(num_threads=2, requests_per_thread=50, seed=4)
        schedule = build_schedule(list(range(10)), spec)
        assert schedule[0] != schedule[1]

    def test_zipf_skew_favours_hot_items(self):
        spec = LoadSpec(num_threads=4, requests_per_thread=200, zipf_exponent=1.3, seed=0)
        schedule = build_schedule(list(range(16)), spec)
        flat = [item for seq in schedule for item in seq]
        counts = np.bincount(np.asarray(flat), minlength=16)
        assert counts[0] == max(counts)
        assert counts[0] > counts[8]

    def test_pool_items_passed_through(self):
        spec = LoadSpec(num_threads=1, requests_per_thread=20, seed=0)
        schedule = build_schedule([("model-a", 3), ("model-b", 5)], spec)
        assert set(schedule[0]) <= {("model-a", 3), ("model-b", 5)}

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            LoadSpec(num_threads=0)
        with pytest.raises(ValueError):
            LoadSpec(requests_per_thread=0)
        with pytest.raises(ValueError):
            LoadSpec(zipf_exponent=-0.1)
        with pytest.raises(ValueError):
            LoadSpec(arrival_rate_hz=0.0)


class TestRun:
    def test_run_collects_results_and_latencies(self):
        spec = LoadSpec(num_threads=3, requests_per_thread=15, seed=6)
        generator = LoadGenerator(list(range(5)), spec)
        seen_threads = set()

        def serve(item):
            seen_threads.add(threading.current_thread().name)
            return np.full((2, 2), float(item))

        report = generator.run(serve)
        assert report.num_requests == 45
        assert len(seen_threads) == 3
        assert report.latencies.shape == (45,)
        for tid, per_thread in enumerate(report.results):
            assert [item for item, _ in per_thread] == generator.schedule[tid]
            for item, value in per_thread:
                assert np.array_equal(value, np.full((2, 2), float(item)))
        summary = report.summary()
        assert summary["throughput_rps"] > 0
        assert summary["latency"]["p50_ms"] <= summary["latency"]["p99_ms"]

    def test_collect_results_off_keeps_latencies(self):
        spec = LoadSpec(num_threads=2, requests_per_thread=10, seed=0)
        report = LoadGenerator([1, 2, 3], spec).run(
            lambda item: np.zeros(1), collect_results=False
        )
        assert report.results == [[], []]
        assert report.latencies.shape == (20,)

    def test_worker_exception_propagates(self):
        spec = LoadSpec(num_threads=2, requests_per_thread=5, seed=0)

        def explode(item):
            raise ValueError("serve failed")

        with pytest.raises(ValueError, match="serve failed"):
            LoadGenerator([1], spec).run(explode)

    def test_paced_arrivals_slow_the_run(self):
        fast = LoadGenerator(
            [0], LoadSpec(num_threads=1, requests_per_thread=10, seed=0)
        ).run(lambda item: np.zeros(1))
        paced = LoadGenerator(
            [0],
            LoadSpec(num_threads=1, requests_per_thread=10, seed=0, arrival_rate_hz=200.0),
        ).run(lambda item: np.zeros(1))
        assert paced.elapsed_seconds > fast.elapsed_seconds
