"""Checkpoint bundles and the multi-worker launcher."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import STSMConfig, STSMForecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_dataset
from repro.evaluation import forecast_window_starts
from repro.serving.transport import (
    BundleEntry,
    ForecastClient,
    ServeConfig,
    load_bundle,
    run_worker,
    save_bundle,
)

_RECIPE = {"name": "pems-bay", "num_sensors": 10, "num_days": 1, "seed": 11}


@pytest.fixture(scope="module")
def fitted():
    """One tiny fitted STSM plus its data context and window pool."""
    dataset = make_dataset(_RECIPE["name"], num_sensors=_RECIPE["num_sensors"],
                           num_days=_RECIPE["num_days"], seed=_RECIPE["seed"])
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=8, horizon=8)
    train_ix, _ = temporal_split(dataset.num_steps)
    config = STSMConfig(hidden_dim=8, num_blocks=1, tcn_levels=2, gcn_depth=1,
                        epochs=1, patience=1, batch_size=8, window_stride=8,
                        top_k=5, seed=_RECIPE["seed"])
    model = STSMForecaster(config)
    model.fit(dataset, split, spec, train_ix)
    starts = forecast_window_starts(dataset, spec, max_windows=6)
    return model, starts


@pytest.fixture(scope="module")
def bundle_dir(fitted, tmp_path_factory):
    model, starts = fitted
    directory = tmp_path_factory.mktemp("bundle")
    save_bundle(directory, {
        "stsm/pems-bay": BundleEntry(
            forecaster=model,
            dataset=dict(_RECIPE),
            warmup_starts=[int(s) for s in starts],
        ),
    })
    return directory


class TestBundle:
    def test_manifest_shape(self, bundle_dir):
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        entry = manifest["models"]["stsm/pems-bay"]
        assert entry["dataset"] == _RECIPE
        assert (bundle_dir / entry["checkpoint"]).exists()
        assert len(entry["warmup_starts"]) == 6
        assert set(entry["split"]) == {"train", "validation", "test", "name"}

    def test_restored_predictions_bitwise(self, fitted, bundle_dir):
        model, starts = fitted
        restored, warmup = load_bundle(bundle_dir)["stsm/pems-bay"]
        assert warmup == [int(s) for s in starts]
        assert np.array_equal(model.predict(starts), restored.predict(starts))

    def test_split_context_restored(self, fitted, bundle_dir):
        model, _starts = fitted
        restored, _ = load_bundle(bundle_dir)["stsm/pems-bay"]
        assert np.array_equal(restored.split.unobserved, model.split.unobserved)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest.json"):
            load_bundle(tmp_path)

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_bundle(tmp_path, {
                "x": BundleEntry(forecaster=STSMForecaster(),
                                 dataset={"name": "pems-bay"}),
            })

    def test_recipe_without_name_rejected(self, fitted, tmp_path):
        model, _ = fitted
        with pytest.raises(ValueError, match="dataset 'name'"):
            save_bundle(tmp_path, {"x": BundleEntry(forecaster=model, dataset={})})


class TestWorker:
    def test_run_worker_serves_and_drains(self, fitted, bundle_dir, tmp_path):
        """Boot a worker in-thread: warm-up, readiness, serving, drain."""
        model, starts = fitted
        config = ServeConfig(
            checkpoint_dir=str(bundle_dir), port=0, state_dir=str(tmp_path),
            deadline_ms=1.0,
        )
        stop = threading.Event()
        worker = threading.Thread(
            target=run_worker, args=(config,),
            kwargs={"stop_event": stop, "reuse_port": False}, daemon=True,
        )
        worker.start()
        try:
            state_path = tmp_path / "worker-0.json"
            deadline = time.monotonic() + 60
            while not state_path.exists():
                assert time.monotonic() < deadline, "worker never became ready"
                time.sleep(0.05)
            state = json.loads(state_path.read_text())
            assert state["models"] == ["stsm/pems-bay"]
            assert state["control_port"] != state["port"]
            with ForecastClient("127.0.0.1", state["port"]) as client:
                assert client.wait_ready(10.0)
                block = client.forecast_one("stsm/pems-bay", int(starts[0]))
                # Warm-up went through the scheduler path, so the served
                # block is the warmed cache entry; certify it against a
                # replay of the worker's own logged batch compositions.
                replay = {}
                for batch in client.batch_log("stsm/pems-bay"):
                    direct = model.predict(batch)
                    for row, start in enumerate(batch):
                        replay.setdefault(int(start), direct[row])
                assert np.array_equal(block, replay[int(starts[0])])
                stats = client.stats()
                assert stats["runtime"]["totals"]["completed"] >= len(starts)
        finally:
            stop.set()
            worker.join(timeout=30)
        assert not worker.is_alive()
        assert not state_path.exists()  # removed on graceful exit


@pytest.mark.slow
class TestLauncherProcess:
    def test_sigterm_drains_multi_worker_fleet(self, bundle_dir, tmp_path):
        """Full launcher path: spawn 2 SO_REUSEPORT workers, query, SIGTERM."""
        if not hasattr(__import__("socket"), "SO_REUSEPORT"):
            pytest.skip("platform lacks SO_REUSEPORT")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serving", "serve",
             "--checkpoint-dir", str(bundle_dir), "--port", "0",
             "--workers", "2", "--state-dir", str(tmp_path)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.monotonic() + 120
            state_files = []
            while time.monotonic() < deadline:
                state_files = sorted(tmp_path.glob("worker-*.json"))
                if len(state_files) == 2:
                    break
                assert proc.poll() is None, proc.stdout.read()
                time.sleep(0.2)
            assert len(state_files) == 2, "workers never became ready"
            infos = [json.loads(f.read_text()) for f in state_files]
            # Both workers share the public port; control ports differ.
            assert infos[0]["port"] == infos[1]["port"]
            assert infos[0]["control_port"] != infos[1]["control_port"]
            with ForecastClient("127.0.0.1", infos[0]["port"]) as client:
                assert client.wait_ready(10.0)
                assert client.models() == ["stsm/pems-bay"]
                starts = json.loads(
                    (bundle_dir / "manifest.json").read_text()
                )["models"]["stsm/pems-bay"]["warmup_starts"]
                block = client.forecast_one("stsm/pems-bay", starts[0])
                assert block.shape[0] == 8
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        assert sorted(tmp_path.glob("worker-*.json")) == []


class TestBundleCache:
    """Bundles carrying an exported artifact store boot hot."""

    @pytest.fixture()
    def warm_bundle_dir(self, fitted, tmp_path):
        from repro.engine import ArtifactStore
        from repro.serving import ForecastService

        model, starts = fitted
        store = ArtifactStore()
        # Park the warm-up blocks in the store through the serving path.
        ForecastService(model, store=store).forecast(np.asarray(starts))
        save_bundle(tmp_path, {
            "stsm/pems-bay": BundleEntry(
                forecaster=model,
                dataset=dict(_RECIPE),
                warmup_starts=[int(s) for s in starts],
            ),
        }, store=store)
        return tmp_path

    def test_cache_dir_discovered(self, warm_bundle_dir):
        from repro.serving.transport.workers import bundle_cache_dir

        assert bundle_cache_dir(warm_bundle_dir) == warm_bundle_dir / "cache"
        manifest = json.loads((warm_bundle_dir / "manifest.json").read_text())
        assert manifest["cache"]["dir"] == "cache"
        assert manifest["cache"]["entries"] > 0

    def test_bundle_without_cache_reads_as_cold(self, bundle_dir):
        from repro.serving.transport.workers import bundle_cache_dir

        assert bundle_cache_dir(bundle_dir) is None

    def test_worker_boots_hot_and_bitwise(self, fitted, warm_bundle_dir):
        """Warm-up served from the bundle cache: zero recomputes, and the
        served bytes equal the training process's direct predict bytes."""
        from repro.serving.transport.workers import _build_runtime

        model, starts = fitted
        runtime, warmups = _build_runtime(ServeConfig(checkpoint_dir=str(warm_bundle_dir)))
        with runtime:
            key = "stsm/pems-bay"
            runtime.warm_up(key, np.asarray(warmups[key], dtype=int))
            stats = runtime.stats(key)["service"]
            assert stats["windows_computed"] == 0
            assert stats["cache_hits"] == len(warmups[key])
            served = runtime.forecast(key, np.asarray(starts[:2], dtype=int))
        direct = model.predict(np.asarray(starts, dtype=int))
        assert served.tobytes() == direct[:2].tobytes()

    def test_deleted_cache_degrades_to_cold_boot(self, fitted, warm_bundle_dir):
        import shutil

        from repro.serving.transport.workers import _build_runtime

        shutil.rmtree(warm_bundle_dir / "cache")
        runtime, warmups = _build_runtime(ServeConfig(checkpoint_dir=str(warm_bundle_dir)))
        with runtime:
            key = "stsm/pems-bay"
            runtime.warm_up(key, np.asarray(warmups[key], dtype=int))
            assert runtime.stats(key)["service"]["windows_computed"] == len(warmups[key])

    def test_scopeless_model_in_cached_bundle_boots_cold(self, fitted, warm_bundle_dir, monkeypatch):
        """A bundle model with no derivable content scope must still
        serve (cold, private cache) instead of crashing worker boot."""
        import repro.serving.transport.workers as workers_mod

        monkeypatch.setattr(workers_mod, "default_store_scope", lambda f: None)
        runtime, warmups = workers_mod._build_runtime(
            ServeConfig(checkpoint_dir=str(warm_bundle_dir))
        )
        with runtime:
            key = "stsm/pems-bay"
            runtime.warm_up(key, np.asarray(warmups[key], dtype=int))
            # Cold: recomputed, because the store could not be scoped.
            assert runtime.stats(key)["service"]["windows_computed"] == len(warmups[key])
