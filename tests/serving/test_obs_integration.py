"""Observability end-to-end over the serving stack.

One wire request must yield ONE trace id visible at every layer —
client header → server span → scheduler spans → service spans → store
spans — and the metrics surfaces (``GET /metrics``, ``stats()``'s
``metrics`` section) must expose the migrated counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ArtifactStore
from repro.interfaces import FitReport, Forecaster
from repro.obs import get_recorder, set_obs_enabled
from repro.serving import ServingRuntime
from repro.serving.service import ForecastService
from repro.serving.transport import ForecastClient, ForecastHTTPServer, codec


class _Affine(Forecaster):
    name = "affine"
    #: Content scope so a store-backed service can cache its windows.
    state_digest = b"obs-affine-v1"

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        return FitReport()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        window_starts = np.asarray(window_starts, dtype=int)
        grid = np.arange(6, dtype=float).reshape(2, 3)
        return window_starts[:, None, None] * 3.0 + grid[None]


@pytest.fixture()
def traced_server():
    """Store-backed served model with tracing on; recorder restored after."""
    recorder = get_recorder()
    set_obs_enabled(True)
    recorder.clear()
    store = ArtifactStore()
    service = ForecastService(_Affine(), store=store, store_scope=b"obs-test")
    try:
        with ServingRuntime(deadline_ms=1.0) as runtime:
            runtime.attach_store(store)
            runtime.register("toy", service)
            with ForecastHTTPServer(runtime).start() as server:
                server.set_ready()
                with ForecastClient("127.0.0.1", server.port,
                                    retries=2, backoff_s=0.01) as client:
                    yield runtime, server, client, recorder
    finally:
        set_obs_enabled(None)
        recorder.clear()


class TestEndToEndTrace:
    def test_one_request_one_trace_through_every_layer(self, traced_server):
        _runtime, _server, client, recorder = traced_server
        block = client.forecast_one("toy", 5)
        assert np.array_equal(block, _Affine().predict(np.array([5]))[0])
        trace_id = client.last_trace_id
        assert trace_id is not None
        spans = recorder.spans(trace_id)
        names = {s["name"] for s in spans}
        assert {"client.request", "server.request", "scheduler.queue_wait",
                "scheduler.batch_dispatch", "service.cache_lookup",
                "service.predict", "store.get"} <= names
        # Every span carries the SAME trace id (the assertion above
        # already filtered; double-check none leaked to another trace).
        assert all(s["trace"] == trace_id for s in spans)

    def test_parent_links_form_one_tree(self, traced_server):
        _runtime, _server, client, recorder = traced_server
        client.forecast_one("toy", 9)
        spans = recorder.spans(client.last_trace_id)
        by_name = {s["name"]: s for s in spans}
        client_span = by_name["client.request"]
        server_span = by_name["server.request"]
        dispatch = by_name["scheduler.batch_dispatch"]
        assert client_span["parent"] is None
        assert server_span["parent"] == client_span["span"]
        assert dispatch["parent"] == server_span["span"]
        assert by_name["service.predict"]["parent"] == dispatch["span"]
        # Store probes run inside the batch scope, under the ambient ctx.
        assert by_name["store.get"]["trace"] == client_span["trace"]

    def test_wire_trace_arrives_via_traces_endpoint(self, traced_server):
        _runtime, _server, client, recorder = traced_server
        client.forecast("toy", [1, 2, 3])
        trace_id = client.last_trace_id
        exported = client.traces(trace_id)
        assert exported and all(s["trace"] == trace_id for s in exported)
        assert {"server.request", "service.predict"} <= {
            s["name"] for s in exported
        }

    def test_untraced_client_sends_no_header(self, traced_server):
        _runtime, _server, client, recorder = traced_server
        untraced = ForecastClient("127.0.0.1", client.port, trace=False)
        with untraced:
            untraced.forecast_one("toy", 7)
        assert untraced.last_trace_id is None

    def test_cache_hit_span_reports_hit(self, traced_server):
        _runtime, _server, client, recorder = traced_server
        client.forecast_one("toy", 11)  # miss, computes
        client.forecast_one("toy", 11)  # hit
        hits = [
            s["attrs"].get("hit")
            for s in recorder.spans(client.last_trace_id)
            if s["name"] == "store.get"
        ]
        assert True in hits


class TestMetricsSurfaces:
    def test_metrics_endpoint_exposes_required_names(self, traced_server):
        _runtime, _server, client, _recorder = traced_server
        client.forecast("toy", [1, 2, 3, 4])
        text = client.metrics_text()
        for required in (
            "repro_request_latency_seconds_bucket",
            "repro_request_latency_seconds_count",
            "repro_requests_submitted_total",
            "repro_requests_completed_total",
            "repro_cache_hits_total",
            "repro_store_hits_total",
            "repro_transport_requests_total",
            "repro_queue_depth",
        ):
            assert required in text, f"missing {required} in /metrics"
        assert 'repro_requests_completed_total{model="toy"} 4' in text

    def test_stats_metrics_section(self, traced_server):
        runtime, _server, client, _recorder = traced_server
        client.forecast_one("toy", 1)
        stats = runtime.stats()
        metrics = stats["metrics"]
        assert "repro_request_latency_seconds{model=\"toy\"}" in (
            metrics["histograms"]
        )
        runtime_samples = metrics["collected"]["runtime"]
        assert runtime_samples['repro_requests_completed_total{model="toy"}'] >= 1

    def test_metrics_is_a_reserved_stats_section(self, traced_server):
        runtime, _server, _client, _recorder = traced_server
        with pytest.raises(ValueError, match="reserved"):
            runtime.add_stats_source("metrics", dict)

    def test_latency_summary_shape_unchanged(self, traced_server):
        runtime, _server, client, _recorder = traced_server
        for start in range(8):
            client.forecast_one("toy", start)
        latency = runtime.stats("toy")["latency"]
        assert latency["count"] == 8
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert latency["max_ms"] >= latency["p99_ms"] * 0.99


class TestObsOffIsInert:
    def test_no_spans_and_no_header_by_default(self):
        set_obs_enabled(False)
        recorder = get_recorder()
        recorder.clear()
        try:
            with ServingRuntime(deadline_ms=1.0) as runtime:
                runtime.register("toy", _Affine())
                with ForecastHTTPServer(runtime).start() as server:
                    server.set_ready()
                    with ForecastClient("127.0.0.1", server.port) as client:
                        client.forecast_one("toy", 3)
                        assert client.last_trace_id is None
            assert recorder.spans() == []
        finally:
            set_obs_enabled(None)

    def test_malformed_wire_trace_is_ignored(self):
        body = codec.encode_frame(
            {"kind": "forecast", "starts": [1], "trace": {"id": 42}}
        )
        starts, trace = codec.decode_request_meta(body)
        assert starts == [1] and trace is None

    def test_well_formed_wire_trace_round_trips(self):
        body = codec.encode_request(
            [1, 2], trace={"id": "a" * 16, "span": "b" * 8}
        )
        starts, trace = codec.decode_request_meta(body)
        assert starts == [1, 2]
        assert trace == {"id": "a" * 16, "span": "b" * 8}
