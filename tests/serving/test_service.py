"""ForecastService: batching, caching, and bitwise parity with predict."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GEGANForecaster, HistoricalAverageForecaster, IGNNKForecaster
from repro.core import STSMConfig, STSMForecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_pems_bay
from repro.evaluation import evaluate_forecaster, forecast_window_starts
from repro.interfaces import FitReport, Forecaster
from repro.serving import ForecastService


@pytest.fixture(scope="module")
def setting():
    dataset = make_pems_bay(num_sensors=18, num_days=3, seed=23)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=6, horizon=6)
    train_ix, _ = temporal_split(dataset.num_steps)
    starts = forecast_window_starts(dataset, spec, max_windows=8)
    return dataset, split, spec, train_ix, starts


@pytest.fixture(scope="module")
def fitted_stsm(setting):
    dataset, split, spec, train_ix, _starts = setting
    cfg = STSMConfig(
        hidden_dim=8, num_blocks=1, tcn_levels=2, gcn_depth=1,
        epochs=2, patience=2, batch_size=8, window_stride=8, top_k=5,
    )
    model = STSMForecaster(cfg)
    model.fit(dataset, split, spec, train_ix)
    return model


class _CountingForecaster(Forecaster):
    """Deterministic toy model that records every predict() batch."""

    name = "counting"

    def __init__(self, horizon: int = 4, num_unobserved: int = 3) -> None:
        self.horizon = horizon
        self.num_unobserved = num_unobserved
        self.calls: list[np.ndarray] = []

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        return FitReport()

    def predict(self, window_starts: np.ndarray) -> np.ndarray:
        window_starts = np.asarray(window_starts, dtype=int)
        self.calls.append(window_starts.copy())
        grid = np.arange(self.horizon)[:, None] + np.arange(self.num_unobserved)[None, :]
        return window_starts[:, None, None] * 1000.0 + grid[None]


class TestBitwiseParity:
    def test_service_equals_direct_predict_stsm(self, fitted_stsm, setting):
        *_rest, starts = setting
        service = ForecastService(fitted_stsm)
        batched = service.forecast(starts)
        # Zero added drift: a cold-cache forecast over unique sorted
        # starts is bitwise the model's own batched predict call.
        assert np.array_equal(batched, fitted_stsm.predict(starts))
        # Cached repeats stay bitwise stable forever.
        assert np.array_equal(service.forecast(starts[::-1]), batched[::-1])
        # Per-window calls agree to the last ulp of the conv einsum's
        # batch-size-dependent BLAS path (a property of STSM's predict
        # itself, not of the service).
        sequential = np.concatenate(
            [fitted_stsm.predict(np.array([s])) for s in starts], axis=0
        )
        np.testing.assert_allclose(batched, sequential, rtol=0, atol=1e-12)

    def test_batched_equals_per_window_ignnk(self, setting):
        dataset, split, spec, train_ix, starts = setting
        model = IGNNKForecaster(iterations=5, hidden=8)
        model.fit(dataset, split, spec, train_ix)
        service = ForecastService(model)
        batched = service.forecast(starts)
        sequential = np.concatenate(
            [model.predict(np.array([s])) for s in starts], axis=0
        )
        assert np.array_equal(batched, sequential)

    def test_stateful_gegan_served_per_window(self, setting):
        dataset, split, spec, train_ix, starts = setting
        model = GEGANForecaster(iterations=5, hidden=16)
        model.fit(dataset, split, spec, train_ix)
        service = ForecastService(model)
        assert service.stateless_predict is False
        batched = service.forecast(starts)
        sequential = np.concatenate(
            [model.predict(np.array([s])) for s in starts], axis=0
        )
        assert np.array_equal(batched, sequential)
        # One predict call per distinct window, not one big batch.
        assert service.predict_calls == len(starts)


class TestCoalescingAndCaching:
    def test_duplicates_coalesce_into_one_call(self):
        model = _CountingForecaster()
        service = ForecastService(model)
        starts = np.array([5, 3, 5, 3, 9, 5])
        out = service.forecast(starts)
        assert out.shape == (6, model.horizon, model.num_unobserved)
        assert len(model.calls) == 1
        assert model.calls[0].tolist() == [3, 5, 9]  # deduped, sorted
        # Request order preserved in the assembled output.
        assert np.array_equal(out[0], out[2]) and np.array_equal(out[0], out[5])
        assert out[0, 0, 0] == pytest.approx(5000.0)
        assert out[1, 0, 0] == pytest.approx(3000.0)

    def test_repeat_traffic_served_from_cache(self):
        model = _CountingForecaster()
        service = ForecastService(model)
        first = service.forecast(np.array([1, 2, 3]))
        second = service.forecast(np.array([3, 2, 1]))
        assert len(model.calls) == 1
        assert np.array_equal(first[::-1], second)
        assert service.stats["windows_computed"] == 3
        assert service.stats["requests"] == 6

    def test_max_batch_size_chunks(self):
        model = _CountingForecaster()
        service = ForecastService(model, max_batch_size=4)
        service.forecast(np.arange(10))
        assert [len(call) for call in model.calls] == [4, 4, 2]

    def test_submit_flush_handles(self):
        model = _CountingForecaster()
        service = ForecastService(model)
        handles = [service.submit(s) for s in (7, 11)]
        assert not handles[0].ready
        computed = service.flush()
        assert computed == 2
        assert handles[0].ready
        assert handles[0].result()[0, 0] == pytest.approx(7000.0)
        assert handles[1].result()[0, 0] == pytest.approx(11000.0)

    def test_handle_result_triggers_flush(self):
        model = _CountingForecaster()
        service = ForecastService(model)
        handle = service.submit(4)
        assert handle.result()[0, 0] == pytest.approx(4000.0)
        assert len(model.calls) == 1

    def test_tiny_cache_still_correct(self):
        model = _CountingForecaster()
        service = ForecastService(model, cache_size=2)
        out = service.forecast(np.arange(6))
        expected = model.predict(np.arange(6))
        assert np.array_equal(out, expected)

    def test_empty_request_rejected(self):
        service = ForecastService(_CountingForecaster())
        with pytest.raises(ValueError):
            service.forecast(np.array([], dtype=int))

    def test_empty_request_does_not_flush_pending(self):
        """Validation happens before intake: no predict, no premature flush."""
        model = _CountingForecaster()
        service = ForecastService(model)
        handle = service.submit(5)
        with pytest.raises(ValueError):
            service.forecast(np.array([], dtype=int))
        assert model.calls == []  # the pending window was not flushed
        assert not handle.ready
        assert handle.result()[0, 0] == pytest.approx(5000.0)

    def test_handle_result_survives_adversarial_eviction(self):
        """result() never returns None, even if every put is evicted."""
        from repro.engine import LRUCache

        class _NeverStores(LRUCache):
            def put(self, key, value):
                pass  # adversarial cache: evicts everything instantly

        model = _CountingForecaster()
        service = ForecastService(model, cache=_NeverStores(maxsize=4))
        handle = service.submit(6)
        value = handle.result()
        assert value is not None
        assert value[0, 0] == pytest.approx(6000.0)

    def test_eviction_recompute_recorded_in_telemetry(self):
        """The eviction fallback is a real miss and must be counted, not
        silently recomputed — hit-rate stats stay truthful under a
        shared bounded store."""
        from repro.engine import LRUCache

        class _NeverStores(LRUCache):
            def put(self, key, value):
                pass

        model = _CountingForecaster()
        service = ForecastService(model, cache=_NeverStores(maxsize=4))
        service.submit(6).result()
        assert service.eviction_recomputes == 1
        assert service.stats["eviction_recomputes"] == 1

        # The healthy path never touches the counter.
        healthy = ForecastService(_CountingForecaster())
        healthy.forecast(np.array([1, 2, 1]))
        assert healthy.eviction_recomputes == 0
        assert healthy.stats["eviction_recomputes"] == 0

    def test_shared_cache_between_services(self):
        """Two services over one (thread-safe) cache share computed windows."""
        from repro.engine import LRUCache

        cache = LRUCache(maxsize=32)
        model_a = _CountingForecaster()
        model_b = _CountingForecaster()
        service_a = ForecastService(model_a, cache=cache)
        service_b = ForecastService(model_b, cache=cache)
        first = service_a.forecast(np.array([1, 2]))
        second = service_b.forecast(np.array([2, 1]))
        assert np.array_equal(first[::-1], second)
        assert model_a.calls and not model_b.calls  # b served from shared cache
        assert service_b.cache_hits == 2

    def test_batch_log_records_predict_compositions(self):
        model = _CountingForecaster()
        service = ForecastService(model, max_batch_size=2, log_batches=True)
        service.forecast(np.array([3, 1, 2]))
        assert [b.tolist() for b in service.batch_log] == [[1, 2], [3]]
        assert ForecastService(model).batch_log is None  # off by default

    def test_unfitted_forecaster_rejected(self):
        model = IGNNKForecaster()
        with pytest.raises(RuntimeError):
            ForecastService(model)

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            ForecastService(_CountingForecaster(), max_batch_size=0)


class TestEvaluatorIntegration:
    def test_use_service_matches_direct_metrics(self, setting):
        dataset, split, spec, _train_ix, _starts = setting
        direct = evaluate_forecaster(
            HistoricalAverageForecaster(), dataset, split, spec, max_test_windows=6
        )
        served = evaluate_forecaster(
            HistoricalAverageForecaster(), dataset, split, spec,
            max_test_windows=6, use_service=True,
        )
        assert served.metrics.rmse == pytest.approx(direct.metrics.rmse)
        assert served.extra["service"]["windows_computed"] == served.num_windows


class TestStoreBackedService:
    def test_store_serves_across_service_instances(self, fitted_stsm, setting):
        """Two services over one store + same model content share blocks
        bitwise — the cross-process serving scenario, in miniature."""
        from repro.engine import ArtifactStore

        _dataset, _split, _spec, _train_ix, starts = setting
        store = ArtifactStore()
        first = ForecastService(fitted_stsm, store=store)
        blocks = first.forecast(starts)
        second = ForecastService(fitted_stsm, store=store)
        again = second.forecast(starts)
        assert again.tobytes() == blocks.tobytes()
        assert second.windows_computed == 0  # everything came from the store
        assert second.cache_hits == len(starts)

    def test_store_scopes_isolate_models(self):
        from repro.engine import ArtifactStore

        store = ArtifactStore()
        model_a = _CountingForecaster()
        model_b = _CountingForecaster(horizon=4, num_unobserved=3)
        service_a = ForecastService(model_a, store=store, store_scope=b"a")
        service_b = ForecastService(model_b, store=store, store_scope=b"b")
        service_a.forecast(np.array([1]))
        service_b.forecast(np.array([1]))
        assert model_a.calls and model_b.calls  # no cross-scope hit

    def test_store_and_cache_mutually_exclusive(self):
        from repro.engine import ArtifactStore, LRUCache

        with pytest.raises(ValueError, match="not both"):
            ForecastService(
                _CountingForecaster(),
                cache=LRUCache(maxsize=4),
                store=ArtifactStore(),
            )

    def test_store_without_derivable_scope_rejected(self):
        from repro.engine import ArtifactStore

        with pytest.raises(ValueError, match="scope"):
            ForecastService(_CountingForecaster(), store=ArtifactStore())

    def test_evaluator_store_path_matches_direct_metrics(self, fitted_stsm, setting):
        """run_matrix-style serving through the store changes no metric."""
        from repro.engine import ArtifactStore

        dataset, split, spec, _train_ix, _starts = setting

        class _Prefit(Forecaster):
            # evaluate_forecaster refits; reuse the module-scoped model.
            name = "prefit-stsm"
            network = fitted_stsm.network
            config = fitted_stsm.config
            dataset_ = None

            def fit(self, *args):
                return FitReport()

            def predict(self, window_starts):
                return fitted_stsm.predict(window_starts)

        direct = evaluate_forecaster(
            _Prefit(), dataset, split, spec, max_test_windows=4, use_service=True
        )
        stored = evaluate_forecaster(
            _Prefit(), dataset, split, spec, max_test_windows=4,
            use_service=True, store=ArtifactStore(),
        )
        assert stored.metrics.rmse == direct.metrics.rmse
        assert stored.metrics.mae == direct.metrics.mae
