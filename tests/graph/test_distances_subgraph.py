"""Distance matrices, sub-graph extraction, and the road network."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DEFAULT_MAXSPEED,
    HIGHWAY_LEVELS,
    RoadNetwork,
    RoadSegmentAttributes,
    all_subgraphs,
    euclidean_distance_matrix,
    haversine_distance_matrix,
    mean_subgraph_size,
    one_hop_subgraph,
    pairwise_distances,
)


class TestEuclidean:
    def test_known_distances(self):
        coords = np.array([[0.0, 0.0], [3.0, 4.0]])
        out = euclidean_distance_matrix(coords)
        assert out[0, 1] == pytest.approx(5.0)
        assert out[1, 0] == pytest.approx(5.0)
        assert np.all(np.diag(out) == 0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            euclidean_distance_matrix(np.zeros(5))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=12))
    def test_metric_properties(self, n):
        coords = np.random.default_rng(n).uniform(-10, 10, size=(n, 2))
        out = euclidean_distance_matrix(coords)
        assert np.allclose(out, out.T)
        assert np.all(out >= 0)
        # Triangle inequality on a few triples.
        for i in range(min(n, 4)):
            for j in range(min(n, 4)):
                for k in range(min(n, 4)):
                    assert out[i, j] <= out[i, k] + out[k, j] + 1e-9


class TestHaversine:
    def test_equator_degree(self):
        latlon = np.array([[0.0, 0.0], [0.0, 1.0]])
        out = haversine_distance_matrix(latlon)
        assert out[0, 1] == pytest.approx(111_195, rel=0.01)  # ~111.2 km

    def test_symmetric_zero_diag(self):
        latlon = np.array([[37.0, -122.0], [37.5, -122.3], [38.0, -121.9]])
        out = haversine_distance_matrix(latlon)
        assert np.allclose(out, out.T)
        assert np.allclose(np.diag(out), 0.0)

    def test_dispatch(self):
        coords = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert pairwise_distances(coords, "euclidean")[0, 1] == pytest.approx(np.sqrt(2))
        with pytest.raises(ValueError):
            pairwise_distances(coords, "manhattan")


class TestSubgraphs:
    def _chain_adjacency(self, n=5):
        adj = np.zeros((n, n))
        for i in range(n - 1):
            adj[i, i + 1] = adj[i + 1, i] = 1
        return adj

    def test_one_hop_members(self):
        adj = self._chain_adjacency()
        assert list(one_hop_subgraph(adj, 2)) == [1, 2, 3]
        assert list(one_hop_subgraph(adj, 0)) == [0, 1]

    def test_isolated_node_is_own_subgraph(self):
        adj = np.zeros((3, 3))
        assert list(one_hop_subgraph(adj, 1)) == [1]

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            one_hop_subgraph(self._chain_adjacency(), 9)

    def test_all_subgraphs_count(self):
        adj = self._chain_adjacency(4)
        assert len(all_subgraphs(adj)) == 4

    def test_mean_size_chain(self):
        # Chain of 5: end nodes have 2 members, middle nodes 3.
        assert mean_subgraph_size(self._chain_adjacency()) == pytest.approx((2 + 3 + 3 + 3 + 2) / 5)

    def test_mean_size_empty(self):
        assert mean_subgraph_size(np.zeros((0, 0))) == 0.0


class TestRoadNetwork:
    def _triangle(self):
        net = RoadNetwork()
        attrs = RoadSegmentAttributes(
            highway_level=HIGHWAY_LEVELS.index("primary"),
            maxspeed=DEFAULT_MAXSPEED["primary"],
            is_oneway=False,
            lanes=2,
        )
        net.add_intersection(0, (0.0, 0.0))
        net.add_intersection(1, (100.0, 0.0))
        net.add_intersection(2, (100.0, 100.0))
        net.add_segment(0, 1, attrs)
        net.add_segment(1, 2, attrs)
        return net

    def test_segment_length(self):
        net = self._triangle()
        assert net.graph.edges[0, 1]["length"] == pytest.approx(100.0)

    def test_nearest_node(self):
        net = self._triangle()
        assert net.nearest_node((95.0, 5.0)) == 1

    def test_nearest_segment_attributes(self):
        net = self._triangle()
        attrs = net.nearest_segment_attributes((0.0, 1.0))
        assert attrs.maxspeed == DEFAULT_MAXSPEED["primary"]
        assert attrs.as_vector().shape == (4,)

    def test_shortest_path_distances(self):
        net = self._triangle()
        points = np.array([[0.0, 0.0], [100.0, 100.0]])
        out = net.shortest_path_distance_matrix(points)
        assert out[0, 1] == pytest.approx(200.0)  # via node 1
        assert out[0, 0] == 0.0

    def test_disconnected_pairs_are_inf(self):
        net = self._triangle()
        net.add_intersection(9, (500.0, 500.0))
        net.add_intersection(10, (501.0, 500.0))
        attrs = RoadSegmentAttributes(0, 110.0, False, 4)
        net.add_segment(9, 10, attrs)
        out = net.shortest_path_distance_matrix(np.array([[0.0, 0.0], [500.0, 500.0]]))
        assert np.isinf(out[0, 1])

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            RoadNetwork().nearest_node((0.0, 0.0))
