"""Adjacency construction and normalisation (paper Eq. 2 / Eq. 6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    adjacency_density,
    euclidean_distance_matrix,
    gaussian_kernel_adjacency,
    gcn_normalise,
    row_normalise,
)


@pytest.fixture
def coords():
    rng = np.random.default_rng(3)
    return rng.uniform(0, 1000, size=(20, 2))


class TestGaussianKernel:
    def test_binary_symmetric(self, coords):
        adj = gaussian_kernel_adjacency(euclidean_distance_matrix(coords), 0.3)
        assert set(np.unique(adj)) <= {0.0, 1.0}
        assert np.allclose(adj, adj.T)

    def test_no_self_loops_by_default(self, coords):
        adj = gaussian_kernel_adjacency(euclidean_distance_matrix(coords), 0.3)
        assert np.all(np.diag(adj) == 0)

    def test_self_loops_kept_on_request(self, coords):
        adj = gaussian_kernel_adjacency(
            euclidean_distance_matrix(coords), 0.3, self_loops=True
        )
        assert np.all(np.diag(adj) == 1)

    def test_higher_threshold_is_sparser(self, coords):
        distances = euclidean_distance_matrix(coords)
        low = gaussian_kernel_adjacency(distances, 0.1)
        high = gaussian_kernel_adjacency(distances, 0.8)
        assert high.sum() <= low.sum()

    def test_smaller_sigma_is_sparser(self, coords):
        distances = euclidean_distance_matrix(coords)
        wide = gaussian_kernel_adjacency(distances, 0.5, sigma=distances.std())
        narrow = gaussian_kernel_adjacency(distances, 0.5, sigma=distances.std() / 4)
        assert narrow.sum() <= wide.sum()

    def test_close_pair_connected(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [100.0, 0.0]])
        adj = gaussian_kernel_adjacency(euclidean_distance_matrix(coords), 0.5)
        assert adj[0, 1] == 1.0
        assert adj[0, 2] == 0.0

    def test_invalid_threshold_rejected(self, coords):
        distances = euclidean_distance_matrix(coords)
        with pytest.raises(ValueError):
            gaussian_kernel_adjacency(distances, 0.0)
        with pytest.raises(ValueError):
            gaussian_kernel_adjacency(distances, 1.5)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            gaussian_kernel_adjacency(np.zeros((3, 4)), 0.5)

    def test_negative_sigma_rejected(self, coords):
        with pytest.raises(ValueError):
            gaussian_kernel_adjacency(euclidean_distance_matrix(coords), 0.5, sigma=-1.0)


class TestNormalisation:
    def test_gcn_normalise_symmetric_input(self, coords):
        adj = gaussian_kernel_adjacency(euclidean_distance_matrix(coords), 0.3)
        norm = gcn_normalise(adj)
        assert np.allclose(norm, norm.T)
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_gcn_normalise_isolated_node(self):
        adj = np.zeros((3, 3))
        norm = gcn_normalise(adj)
        assert np.allclose(norm, np.eye(3))

    def test_row_normalise_stochastic(self, coords):
        adj = gaussian_kernel_adjacency(euclidean_distance_matrix(coords), 0.3, self_loops=True)
        rows = row_normalise(adj).sum(axis=1)
        assert np.allclose(rows, 1.0)

    def test_row_normalise_zero_row_stays_zero(self):
        adj = np.array([[0.0, 1.0], [0.0, 0.0]])
        norm = row_normalise(adj)
        assert np.allclose(norm[1], 0.0)


class TestDensity:
    def test_complete_graph(self):
        adj = np.ones((4, 4))
        assert adjacency_density(adj) == pytest.approx(1.0)

    def test_empty_graph(self):
        assert adjacency_density(np.zeros((4, 4))) == 0.0

    def test_singleton(self):
        assert adjacency_density(np.zeros((1, 1))) == 0.0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=3, max_value=15), st.floats(min_value=0.05, max_value=0.95))
def test_gcn_normalise_rows_bounded(n, threshold):
    rng = np.random.default_rng(n)
    coords = rng.uniform(0, 100, size=(n, 2))
    adj = gaussian_kernel_adjacency(euclidean_distance_matrix(coords), threshold)
    norm = gcn_normalise(adj)
    assert np.all(norm >= 0)
    assert np.all(np.isfinite(norm))
