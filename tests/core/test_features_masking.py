"""Selective-masking features and both masking strategies (paper §3.3/§4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SelectiveMasker,
    compute_subgraph_similarity,
    cosine_similarities,
    normalise_feature_columns,
    random_subgraph_mask,
    region_embedding,
    selective_masking_probabilities,
    spatial_proximities,
    subgraph_embeddings,
)
from repro.data import space_split
from repro.data.dataset import LocationFeatures
from repro.graph import euclidean_distance_matrix, gaussian_kernel_adjacency


def _chain_adjacency(n):
    adj = np.zeros((n, n))
    for i in range(n - 1):
        adj[i, i + 1] = adj[i + 1, i] = 1
    return adj


class TestFeatureNormalisation:
    def test_columns_in_unit_range(self):
        rng = np.random.default_rng(0)
        emb = rng.uniform(-5, 100, size=(10, 6))
        out = normalise_feature_columns(emb)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert np.allclose(out.min(axis=0), 0.0)
        assert np.allclose(out.max(axis=0), 1.0)

    def test_constant_column_does_not_nan(self):
        emb = np.ones((5, 3))
        out = normalise_feature_columns(emb)
        assert np.all(np.isfinite(out))


class TestSubgraphEmbeddings:
    def test_mean_over_members(self):
        adj = _chain_adjacency(3)
        emb = np.array([[0.0], [3.0], [6.0]])
        out = subgraph_embeddings(emb, adj)
        # Node 0's sub-graph = {0, 1} -> 1.5; node 1's = {0,1,2} -> 3.0.
        assert out[0, 0] == pytest.approx(1.5)
        assert out[1, 0] == pytest.approx(3.0)

    def test_isolated_node_keeps_own_embedding(self):
        adj = np.zeros((2, 2))
        emb = np.array([[1.0], [9.0]])
        out = subgraph_embeddings(emb, adj)
        assert np.allclose(out, emb)

    def test_region_embedding_mean(self):
        emb = np.array([[0.0], [2.0], [10.0]])
        assert region_embedding(emb, np.array([0, 1]))[0] == pytest.approx(1.0)

    def test_region_embedding_empty_rejected(self):
        with pytest.raises(ValueError):
            region_embedding(np.ones((3, 2)), np.array([], dtype=int))

    def test_cosine_similarity_identical(self):
        emb = np.array([[1.0, 0.0], [0.0, 1.0]])
        sims = cosine_similarities(emb, np.array([1.0, 0.0]))
        assert sims[0] == pytest.approx(1.0)
        assert sims[1] == pytest.approx(0.0)

    def test_spatial_proximity_decreases_with_distance(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        prox = spatial_proximities(coords, np.array([1, 2]), np.array([0]))
        assert prox[0] > prox[1]


class TestRandomMasking:
    def test_reaches_target_ratio(self):
        adj = _chain_adjacency(20)
        rng = np.random.default_rng(0)
        masked = random_subgraph_mask(adj, 0.5, rng)
        assert len(masked) >= 10

    def test_masks_whole_subgraphs(self):
        adj = _chain_adjacency(10)
        rng = np.random.default_rng(1)
        masked = set(random_subgraph_mask(adj, 0.3, rng).tolist())
        # Contiguity: some masked node must have a masked neighbour
        # (sub-graphs are seed + neighbours on a chain).
        assert any((i + 1) in masked or (i - 1) in masked for i in masked)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            random_subgraph_mask(_chain_adjacency(5), 1.5, np.random.default_rng(0))

    def test_deterministic_under_seed(self):
        adj = _chain_adjacency(12)
        a = random_subgraph_mask(adj, 0.4, np.random.default_rng(7))
        b = random_subgraph_mask(adj, 0.4, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestSelectiveMasking:
    def _make_similarity(self, tiny_traffic, split):
        distances = euclidean_distance_matrix(tiny_traffic.coords)
        sigma = distances[~np.eye(len(distances), dtype=bool)].std() * 0.35
        a_sg = gaussian_kernel_adjacency(distances, 0.5, sigma=sigma)
        return compute_subgraph_similarity(
            tiny_traffic.features, tiny_traffic.coords, a_sg,
            split.observed, split.unobserved,
        ), a_sg

    def test_probabilities_in_range(self, tiny_traffic, tiny_split):
        similarity, a_sg = self._make_similarity(tiny_traffic, tiny_split)
        obs_ix = np.ix_(tiny_split.observed, tiny_split.observed)
        probs = selective_masking_probabilities(similarity, 0.5, a_sg[obs_ix], top_k=5)
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)

    def test_top_k_zeroes_rest(self, tiny_traffic, tiny_split):
        similarity, a_sg = self._make_similarity(tiny_traffic, tiny_split)
        obs_ix = np.ix_(tiny_split.observed, tiny_split.observed)
        probs = selective_masking_probabilities(similarity, 0.5, a_sg[obs_ix], top_k=3)
        assert np.count_nonzero(probs) <= 2 * 3  # top-k in both score vectors

    def test_invalid_args_rejected(self, tiny_traffic, tiny_split):
        similarity, a_sg = self._make_similarity(tiny_traffic, tiny_split)
        obs_ix = np.ix_(tiny_split.observed, tiny_split.observed)
        with pytest.raises(ValueError):
            selective_masking_probabilities(similarity, 0.0, a_sg[obs_ix], top_k=3)
        with pytest.raises(ValueError):
            selective_masking_probabilities(similarity, 0.5, a_sg[obs_ix], top_k=0)

    def test_draw_always_masks_something(self, tiny_traffic, tiny_split):
        similarity, a_sg = self._make_similarity(tiny_traffic, tiny_split)
        obs_ix = np.ix_(tiny_split.observed, tiny_split.observed)
        masker = SelectiveMasker(similarity, a_sg[obs_ix], 0.5, top_k=5)
        rng = np.random.default_rng(0)
        for _ in range(10):
            masked = masker.draw(rng)
            assert len(masked) >= 1
            assert np.all(masked < len(tiny_split.observed))

    def test_ratio_tracks_target(self, tiny_traffic, tiny_split):
        similarity, a_sg = self._make_similarity(tiny_traffic, tiny_split)
        obs_ix = np.ix_(tiny_split.observed, tiny_split.observed)
        masker = SelectiveMasker(similarity, a_sg[obs_ix], 0.5, top_k=8)
        rng = np.random.default_rng(1)
        sizes = [len(masker.draw(rng)) for _ in range(50)]
        n_obs = len(tiny_split.observed)
        # With the cap, draws never exceed the target by a whole sub-graph.
        assert max(sizes) <= int(round(0.5 * n_obs)) + n_obs // 2

    def test_selective_prefers_similar(self, tiny_traffic):
        """Masked locations should score higher similarity than average."""
        split = space_split(tiny_traffic.coords, "horizontal")
        similarity, a_sg = self._make_similarity(tiny_traffic, split)
        obs_ix = np.ix_(split.observed, split.observed)
        masker = SelectiveMasker(similarity, a_sg[obs_ix], 0.4, top_k=4)
        rng = np.random.default_rng(3)
        scores = similarity.embedding_similarity
        picked = [scores[masker.draw(rng)].mean() for _ in range(30)]
        assert np.mean(picked) >= scores.mean() - 1e-9
