"""Model save/load roundtrip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import STSMConfig, STSMForecaster, load_forecaster, make_stsm_rnc, save_forecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.evaluation import forecast_window_starts


@pytest.fixture(scope="module")
def fitted(tmp_path_factory):
    from repro.data.synthetic import make_pems_bay

    dataset = make_pems_bay(num_sensors=20, num_days=3, seed=23)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(8, 8)
    model = make_stsm_rnc(
        config=STSMConfig(hidden_dim=8, num_blocks=1, gcn_depth=1, epochs=2,
                          patience=2, batch_size=8, window_stride=8, top_k=5)
    )
    train_ix, _ = temporal_split(dataset.num_steps)
    model.fit(dataset, split, spec, train_ix)
    return model, dataset, split, spec


class TestPersistence:
    def test_roundtrip_predictions_identical(self, fitted, tmp_path):
        model, dataset, split, spec = fitted
        path = tmp_path / "stsm.npz"
        save_forecaster(model, path)
        restored = load_forecaster(path, dataset, split)
        starts = forecast_window_starts(dataset, spec, max_windows=4)
        assert np.allclose(model.predict(starts), restored.predict(starts))

    def test_restored_metadata(self, fitted, tmp_path):
        model, dataset, split, _spec = fitted
        path = tmp_path / "stsm.npz"
        save_forecaster(model, path)
        restored = load_forecaster(path, dataset, split)
        assert restored.name == model.name
        assert restored.config == model.config
        assert restored.scaler.mean_ == pytest.approx(model.scaler.mean_)

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_forecaster(STSMForecaster(), tmp_path / "x.npz")

    def test_bad_file_rejected(self, fitted, tmp_path):
        _model, dataset, split, _spec = fitted
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError):
            load_forecaster(path, dataset, split)


class TestPersistenceOfVariantConfigs:
    def test_gat_variant_roundtrips(self, tmp_path):
        """New config fields (spatial_module, gat_heads) survive save/load."""
        from repro.core import make_stsm_gat
        from repro.data.synthetic import make_pems_bay

        dataset = make_pems_bay(num_sensors=16, num_days=3, seed=31)
        split = space_split(dataset.coords, "horizontal")
        spec = WindowSpec(6, 6)
        model = make_stsm_gat(
            config=STSMConfig(hidden_dim=8, num_blocks=1, gcn_depth=1, epochs=1,
                              patience=1, batch_size=8, window_stride=8, top_k=4,
                              gat_heads=2)
        )
        train_ix, _ = temporal_split(dataset.num_steps)
        model.fit(dataset, split, spec, train_ix)
        path = save_forecaster(model, tmp_path / "gat.npz")
        restored = load_forecaster(path, dataset, split)
        assert restored.config.spatial_module == "gat"
        assert restored.config.gat_heads == 2
        starts = forecast_window_starts(dataset, spec, max_windows=2)
        assert np.allclose(restored.predict(starts), model.predict(starts))
