"""Failure injection: the forecaster must fail loudly on bad inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import STSMConfig, STSMForecaster
from repro.data import SpaceSplit, WindowSpec


@pytest.fixture(scope="module")
def traffic():
    from repro.data.synthetic import make_pems_bay

    return make_pems_bay(num_sensors=16, num_days=2, seed=51)


_FAST = STSMConfig(hidden_dim=8, num_blocks=1, gcn_depth=1, epochs=1,
                   patience=1, batch_size=8, window_stride=8, top_k=5)


class TestFitValidation:
    def test_training_period_too_short(self, traffic):
        from repro.data import space_split

        split = space_split(traffic.coords, "horizontal")
        model = STSMForecaster(_FAST)
        with pytest.raises(ValueError, match="window"):
            model.fit(traffic, split, WindowSpec(64, 64), np.arange(100))

    def test_too_few_observed(self, traffic):
        n = traffic.num_locations
        split = SpaceSplit(
            train=np.array([0]),
            validation=np.array([1]),
            test=np.arange(2, n),
            name="tiny-observed",
        )
        model = STSMForecaster(_FAST)
        with pytest.raises(ValueError, match="observed"):
            model.fit(traffic, split, WindowSpec(8, 8), np.arange(traffic.num_steps))

    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ValueError):
            STSMForecaster(STSMConfig(mask_ratio=2.0))

    def test_road_mode_without_network(self):
        from repro.data import space_split
        from repro.data.synthetic import make_airq

        airq = make_airq(num_sensors=12, num_days=5, seed=1)
        split = space_split(airq.coords, "horizontal")
        model = STSMForecaster(_FAST.replace(distance_mode="road_all"))
        with pytest.raises(ValueError, match="road network"):
            model.fit(airq, split, WindowSpec(8, 8), np.arange(airq.num_steps))


class TestNumericalRobustness:
    def test_constant_values_train_without_nan(self, traffic):
        """Zero-variance data must not produce NaNs (scaler guards)."""
        from repro.data import space_split
        from repro.data.dataset import SpatioTemporalDataset

        flat = SpatioTemporalDataset(
            name="flat",
            values=np.full_like(traffic.values, 55.0),
            coords=traffic.coords,
            steps_per_day=traffic.steps_per_day,
            features=traffic.features,
            interval_minutes=traffic.interval_minutes,
        )
        split = space_split(flat.coords, "horizontal")
        model = STSMForecaster(_FAST)
        model.fit(flat, split, WindowSpec(8, 8), np.arange(flat.num_steps * 7 // 10))
        out = model.predict(np.array([flat.num_steps - 16]))
        assert np.all(np.isfinite(out))

    def test_duplicate_coordinates_handled(self, traffic):
        """Coincident sensors must not break IDW or adjacency kernels."""
        from repro.data import space_split
        from repro.data.dataset import SpatioTemporalDataset

        coords = traffic.coords.copy()
        coords[1] = coords[0]  # exact duplicate
        dup = SpatioTemporalDataset(
            name="dup",
            values=traffic.values,
            coords=coords,
            steps_per_day=traffic.steps_per_day,
            features=traffic.features,
            interval_minutes=traffic.interval_minutes,
        )
        split = space_split(dup.coords, "horizontal")
        model = STSMForecaster(_FAST)
        model.fit(dup, split, WindowSpec(8, 8), np.arange(dup.num_steps * 7 // 10))
        out = model.predict(np.array([dup.num_steps - 16]))
        assert np.all(np.isfinite(out))
