"""Uncertainty wrappers: MC dropout, deep ensembles, kriging intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GPKrigingForecaster
from repro.core import (
    DeepEnsembleForecaster,
    MCDropoutForecaster,
    STSMConfig,
    make_stsm_rnc,
)
from repro.data import temporal_split
from repro.evaluation import evaluate_intervals, forecast_window_starts
from repro.interfaces import FitReport, Forecaster

_FAST = dict(
    hidden_dim=8,
    num_blocks=1,
    tcn_levels=2,
    gcn_depth=1,
    epochs=2,
    patience=2,
    batch_size=8,
    window_stride=8,
    top_k=5,
    dropout=0.25,
)


class _NoisyStub(Forecaster):
    """Deterministic-per-seed stub: constant + seeded offset."""

    name = "stub"

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def fit(self, dataset, split, spec, train_steps) -> FitReport:
        self.spec = spec
        self.n_u = len(split.unobserved)
        self.offset = np.random.default_rng(self.seed).normal()
        return FitReport(train_seconds=0.001, epochs=1)

    def predict(self, window_starts) -> np.ndarray:
        shape = (len(window_starts), self.spec.horizon, self.n_u)
        return np.full(shape, 50.0 + self.offset)


class TestMCDropout:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_traffic, tiny_split, tiny_spec):
        model = MCDropoutForecaster(
            make_stsm_rnc(config=STSMConfig(**_FAST)), num_samples=5
        )
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        return model

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError, match="num_samples"):
            MCDropoutForecaster(make_stsm_rnc(config=STSMConfig(**_FAST)), num_samples=1)

    def test_rejects_zero_dropout(self, tiny_traffic, tiny_split, tiny_spec):
        config = STSMConfig(**{**_FAST, "dropout": 0.0})
        model = MCDropoutForecaster(make_stsm_rnc(config=config))
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        with pytest.raises(ValueError, match="dropout"):
            model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)

    def test_predict_before_fit_raises(self):
        model = MCDropoutForecaster(make_stsm_rnc(config=STSMConfig(**_FAST)))
        with pytest.raises(RuntimeError, match="before fit"):
            model.predict_samples(np.array([0]))

    def test_samples_vary(self, fitted, tiny_traffic, tiny_spec, tiny_split):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=2)
        samples = fitted.predict_samples(starts)
        assert samples.shape == (
            5, len(starts), tiny_spec.horizon, len(tiny_split.unobserved),
        )
        assert samples.std(axis=0).mean() > 0.0  # dropout injects spread

    def test_interval_ordering_and_mean(self, fitted, tiny_traffic, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=2)
        interval = fitted.predict_interval(starts, coverage=0.8)
        assert np.all(interval.lower <= interval.upper)
        assert np.all(interval.width >= 0.0)
        assert interval.coverage_nominal == 0.8
        point = fitted.predict(starts)
        assert point.shape == interval.mean.shape


class TestDeepEnsemble:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="num_members"):
            DeepEnsembleForecaster(_NoisyStub, num_members=1)
        with pytest.raises(ValueError, match="seeds"):
            DeepEnsembleForecaster(_NoisyStub, num_members=3, seeds=[1, 2])

    def test_predict_before_fit_raises(self):
        model = DeepEnsembleForecaster(_NoisyStub, num_members=2)
        with pytest.raises(RuntimeError, match="before fit"):
            model.predict_samples(np.array([0]))

    def test_members_trained_and_diverse(self, tiny_traffic, tiny_split, tiny_spec):
        model = DeepEnsembleForecaster(_NoisyStub, num_members=4)
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        report = model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        assert len(report.extra["member_train_seconds"]) == 4
        samples = model.predict_samples(np.array([0, 1]))
        assert samples.shape[0] == 4
        assert samples.std(axis=0).mean() > 0.0  # distinct seeds → spread

    def test_mean_is_member_average(self, tiny_traffic, tiny_split, tiny_spec):
        model = DeepEnsembleForecaster(_NoisyStub, num_members=3)
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        starts = np.array([0])
        assert np.allclose(
            model.predict(starts), model.predict_samples(starts).mean(axis=0)
        )

    def test_stsm_ensemble_end_to_end(self, tiny_traffic, tiny_split, tiny_spec):
        model = DeepEnsembleForecaster(
            lambda seed: make_stsm_rnc(config=STSMConfig(**{**_FAST, "seed": seed})),
            num_members=2,
        )
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=2)
        interval = model.predict_interval(starts, coverage=0.8)
        assert np.all(interval.lower <= interval.upper)
        assert np.all(np.isfinite(interval.mean))


class TestKrigingInterval:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_traffic, tiny_split, tiny_spec):
        model = GPKrigingForecaster()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        return model

    def test_interval_brackets_mean(self, fitted, tiny_traffic, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=3)
        interval = fitted.predict_interval(starts, coverage=0.9)
        assert np.all(interval.lower <= interval.mean)
        assert np.all(interval.mean <= interval.upper)

    def test_width_scales_with_coverage(self, fitted, tiny_traffic, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=1)
        narrow = fitted.predict_interval(starts, coverage=0.5)
        wide = fitted.predict_interval(starts, coverage=0.99)
        assert wide.width.mean() > narrow.width.mean()

    def test_rejects_bad_coverage(self, fitted):
        with pytest.raises(ValueError, match="coverage"):
            fitted.predict_interval(np.array([0]), coverage=0.0)

    def test_intervals_scoreable(self, fitted, tiny_traffic, tiny_split, tiny_spec):
        """Kriging intervals run through the same scoring pipeline."""
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=4)
        interval = fitted.predict_interval(starts, coverage=0.9)
        # Build a 2-point sample set from the bounds just to exercise shapes.
        samples = np.stack([interval.lower, interval.upper], axis=0)
        truth = np.stack(
            [
                tiny_traffic.values[
                    s + tiny_spec.input_length : s + tiny_spec.total,
                    tiny_split.unobserved,
                ]
                for s in starts
            ],
            axis=0,
        )
        metrics = evaluate_intervals(samples, truth, coverage=0.9)
        assert 0.0 <= metrics.picp <= 1.0
