"""Multi-region extension (paper's stated future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    STSMConfig,
    compute_subgraph_similarity,
    make_stsm,
    multi_region_similarity,
    multi_region_split,
)
from repro.core.multiregion import _contiguous_regions
from repro.data import WindowSpec, temporal_split
from repro.evaluation import forecast_window_starts
from repro.graph import euclidean_distance_matrix, gaussian_kernel_adjacency


@pytest.fixture(scope="module")
def traffic():
    from repro.data.synthetic import make_pems_bay

    return make_pems_bay(num_sensors=28, num_days=3, seed=17)


class TestMultiRegionSplit:
    def test_partition_valid(self, traffic):
        split = multi_region_split(traffic.coords, 2, rng=np.random.default_rng(0))
        split.validate(traffic.num_locations)

    def test_ratio_respected(self, traffic):
        split = multi_region_split(
            traffic.coords, 2, unobserved_ratio=0.4, rng=np.random.default_rng(1)
        )
        assert len(split.unobserved) == pytest.approx(0.4 * traffic.num_locations, abs=2)

    def test_single_region_reduces(self, traffic):
        split = multi_region_split(traffic.coords, 1, rng=np.random.default_rng(2))
        split.validate(traffic.num_locations)
        # One region: unobserved locations are mutually close (contiguous).
        unobs = traffic.coords[split.unobserved]
        spread = np.linalg.norm(unobs - unobs.mean(axis=0), axis=1).max()
        full_spread = np.linalg.norm(
            traffic.coords - traffic.coords.mean(axis=0), axis=1
        ).max()
        assert spread < full_spread

    def test_regions_are_contiguous_patches(self, traffic):
        split = multi_region_split(traffic.coords, 3, rng=np.random.default_rng(3))
        regions = _contiguous_regions(traffic.coords, split.unobserved, 3)
        assert sum(len(r) for r in regions) == len(split.unobserved)
        assert len(regions) >= 2

    def test_invalid_args_rejected(self, traffic):
        with pytest.raises(ValueError):
            multi_region_split(traffic.coords, 0)
        with pytest.raises(ValueError):
            multi_region_split(traffic.coords, 2, unobserved_ratio=0.99)


class TestMultiRegionSimilarity:
    def _adjacency(self, traffic):
        distances = euclidean_distance_matrix(traffic.coords)
        sigma = distances[~np.eye(len(distances), dtype=bool)].std() * 0.35
        return gaussian_kernel_adjacency(distances, 0.5, sigma=sigma)

    def test_reduces_to_single_region(self, traffic):
        split = multi_region_split(traffic.coords, 1, rng=np.random.default_rng(4))
        a_sg = self._adjacency(traffic)
        multi = multi_region_similarity(
            traffic.features, traffic.coords, a_sg,
            split.observed, split.unobserved, 1,
        )
        single = compute_subgraph_similarity(
            traffic.features, traffic.coords, a_sg, split.observed, split.unobserved
        )
        assert np.allclose(multi.embedding_similarity, single.embedding_similarity)
        assert np.allclose(multi.spatial_proximity, single.spatial_proximity, rtol=1e-6)

    def test_proximity_is_max_over_patch_centroids(self, traffic):
        split = multi_region_split(traffic.coords, 2, rng=np.random.default_rng(5))
        a_sg = self._adjacency(traffic)
        multi = multi_region_similarity(
            traffic.features, traffic.coords, a_sg,
            split.observed, split.unobserved, 2,
        )
        regions = _contiguous_regions(traffic.coords, split.unobserved, 2)
        expected = np.zeros(len(split.observed))
        for region in regions:
            centroid = traffic.coords[region].mean(axis=0)
            dist = np.linalg.norm(traffic.coords[split.observed] - centroid, axis=1)
            expected = np.maximum(expected, 1.0 / np.maximum(dist, 1e-6))
        assert np.allclose(multi.spatial_proximity, expected)


class TestMultiRegionTraining:
    def test_stsm_trains_on_two_regions(self, traffic):
        split = multi_region_split(traffic.coords, 2, rng=np.random.default_rng(6))
        spec = WindowSpec(8, 8)
        model = make_stsm(
            config=STSMConfig(
                hidden_dim=8, num_blocks=1, gcn_depth=1, epochs=2, patience=2,
                batch_size=8, window_stride=8, top_k=5, num_unobserved_regions=2,
            )
        )
        train_ix, _ = temporal_split(traffic.num_steps)
        report = model.fit(traffic, split, spec, train_ix)
        assert report.epochs >= 1
        starts = forecast_window_starts(traffic, spec, max_windows=3)
        out = model.predict(starts)
        assert out.shape == (3, 8, len(split.unobserved))
        assert np.all(np.isfinite(out))
