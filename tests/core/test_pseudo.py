"""Pseudo-observation generation (paper Eq. 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fill_pseudo_observations, idw_weights
from repro.graph import euclidean_distance_matrix


@pytest.fixture
def line_coords():
    # Five points on a line at x = 0, 1, 2, 3, 4.
    return np.column_stack([np.arange(5, dtype=float), np.zeros(5)])


class TestIDWWeights:
    def test_rows_sum_to_one(self, line_coords):
        distances = euclidean_distance_matrix(line_coords)
        weights = idw_weights(distances, np.array([2]), np.array([0, 1, 3, 4]))
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_closer_sources_weigh_more(self, line_coords):
        distances = euclidean_distance_matrix(line_coords)
        weights = idw_weights(distances, np.array([0]), np.array([1, 4]))
        assert weights[0, 0] > weights[0, 1]

    def test_exact_inverse_distance_ratio(self, line_coords):
        distances = euclidean_distance_matrix(line_coords)
        weights = idw_weights(distances, np.array([0]), np.array([1, 2]))
        # 1/1 vs 1/2 -> 2/3 vs 1/3.
        assert np.allclose(weights[0], [2 / 3, 1 / 3])

    def test_top_k_restriction(self, line_coords):
        distances = euclidean_distance_matrix(line_coords)
        weights = idw_weights(distances, np.array([0]), np.array([1, 2, 3, 4]), k=2)
        assert np.count_nonzero(weights[0]) == 2
        assert weights[0, 2] == 0.0 and weights[0, 3] == 0.0
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_k_larger_than_sources_is_noop(self, line_coords):
        distances = euclidean_distance_matrix(line_coords)
        full = idw_weights(distances, np.array([0]), np.array([1, 2]))
        capped = idw_weights(distances, np.array([0]), np.array([1, 2]), k=10)
        assert np.allclose(full, capped)

    def test_invalid_k_rejected(self, line_coords):
        distances = euclidean_distance_matrix(line_coords)
        with pytest.raises(ValueError):
            idw_weights(distances, np.array([0]), np.array([1, 2, 3]), k=0)

    def test_no_sources_rejected(self, line_coords):
        distances = euclidean_distance_matrix(line_coords)
        with pytest.raises(ValueError):
            idw_weights(distances, np.array([0]), np.array([], dtype=int))

    def test_coincident_coordinates_finite(self):
        coords = np.zeros((3, 2))
        distances = euclidean_distance_matrix(coords)
        weights = idw_weights(distances, np.array([0]), np.array([1, 2]))
        assert np.all(np.isfinite(weights))


class TestFill:
    def test_sources_unchanged(self, line_coords):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(10, 5))
        distances = euclidean_distance_matrix(line_coords)
        filled = fill_pseudo_observations(values, distances, np.array([2]), np.array([0, 1, 3, 4]))
        untouched = [0, 1, 3, 4]
        assert np.allclose(filled[:, untouched], values[:, untouched])

    def test_target_is_convex_combination(self, line_coords):
        rng = np.random.default_rng(1)
        values = rng.uniform(10, 20, size=(6, 5))
        distances = euclidean_distance_matrix(line_coords)
        filled = fill_pseudo_observations(values, distances, np.array([2]), np.array([0, 1, 3, 4]))
        sources = values[:, [0, 1, 3, 4]]
        assert np.all(filled[:, 2] >= sources.min(axis=1) - 1e-9)
        assert np.all(filled[:, 2] <= sources.max(axis=1) + 1e-9)

    def test_no_targets_returns_copy(self, line_coords):
        values = np.ones((3, 5))
        distances = euclidean_distance_matrix(line_coords)
        filled = fill_pseudo_observations(values, distances, np.array([], dtype=int), np.array([0]))
        assert np.allclose(filled, values)
        filled[0, 0] = 99.0
        assert values[0, 0] == 1.0  # original untouched

    def test_original_not_mutated(self, line_coords):
        values = np.ones((3, 5))
        distances = euclidean_distance_matrix(line_coords)
        fill_pseudo_observations(values, distances, np.array([2]), np.array([0, 1]))
        assert np.allclose(values, 1.0)

    def test_interpolation_recovers_smooth_field(self, line_coords):
        # Values linear in x: IDW between symmetric neighbours is exact.
        x = line_coords[:, 0]
        values = np.tile(x, (4, 1))
        distances = euclidean_distance_matrix(line_coords)
        filled = fill_pseudo_observations(values, distances, np.array([2]), np.array([1, 3]))
        assert np.allclose(filled[:, 2], 2.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=5, max_value=15), st.integers(min_value=0, max_value=100))
    def test_fill_property(self, n, seed):
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 10, size=(n, 2))
        values = rng.normal(size=(4, n))
        distances = euclidean_distance_matrix(coords)
        targets = np.array([0, 1])
        sources = np.arange(2, n)
        filled = fill_pseudo_observations(values, distances, targets, sources)
        # Convexity: every fill lies inside the source range.
        lo, hi = values[:, 2:].min(axis=1), values[:, 2:].max(axis=1)
        for t in targets:
            assert np.all(filled[:, t] >= lo - 1e-9)
            assert np.all(filled[:, t] <= hi + 1e-9)
