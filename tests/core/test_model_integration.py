"""Integration tests: STSM end-to-end fit/predict on tiny datasets.

Marked slow-ish: each test fits a reduced network for a few epochs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import HistoricalAverageForecaster
from repro.core import (
    STSMConfig,
    STSMForecaster,
    compute_distance_matrices,
    make_stsm,
    make_stsm_nc,
    make_stsm_r,
    make_stsm_rnc,
    make_stsm_trans,
    STSM_VARIANTS,
)
from repro.data import WindowSpec, temporal_split
from repro.evaluation import evaluate_forecaster, forecast_window_starts

_FAST = dict(
    hidden_dim=8,
    num_blocks=1,
    tcn_levels=2,
    gcn_depth=1,
    epochs=3,
    patience=3,
    batch_size=8,
    window_stride=8,
    top_k=5,
)


@pytest.fixture(scope="module")
def fitted_stsm(tiny_traffic_module, tiny_split_module, tiny_spec_module):
    model = make_stsm(config=STSMConfig(**_FAST))
    train_ix, _ = temporal_split(tiny_traffic_module.num_steps)
    model.fit(tiny_traffic_module, tiny_split_module, tiny_spec_module, train_ix)
    return model


# Module-scoped clones of the session fixtures (cheap; reuse generators).
@pytest.fixture(scope="module")
def tiny_traffic_module():
    from repro.data.synthetic import make_pems_bay

    return make_pems_bay(num_sensors=24, num_days=3, seed=7)


@pytest.fixture(scope="module")
def tiny_split_module(tiny_traffic_module):
    from repro.data import space_split

    return space_split(tiny_traffic_module.coords, "horizontal")


@pytest.fixture(scope="module")
def tiny_spec_module():
    return WindowSpec(input_length=8, horizon=8)


class TestFitPredict:
    def test_predict_shape(self, fitted_stsm, tiny_traffic_module, tiny_split_module, tiny_spec_module):
        starts = forecast_window_starts(tiny_traffic_module, tiny_spec_module, max_windows=4)
        out = fitted_stsm.predict(starts)
        assert out.shape == (len(starts), tiny_spec_module.horizon, len(tiny_split_module.unobserved))

    def test_predictions_are_finite_and_in_band(self, fitted_stsm, tiny_traffic_module, tiny_spec_module):
        starts = forecast_window_starts(tiny_traffic_module, tiny_spec_module, max_windows=4)
        out = fitted_stsm.predict(starts)
        assert np.all(np.isfinite(out))
        values = tiny_traffic_module.values
        assert out.min() > values.min() - 5 * values.std()
        assert out.max() < values.max() + 5 * values.std()

    def test_predict_before_fit_raises(self):
        model = STSMForecaster(STSMConfig(**_FAST))
        with pytest.raises(RuntimeError):
            model.predict(np.array([0]))

    def test_training_loss_decreases(self, fitted_stsm):
        history = None  # fitted in fixture; re-fit quickly to observe loss
        model = make_stsm_rnc(config=STSMConfig(**{**_FAST, "epochs": 4}))
        from repro.data.synthetic import make_pems_bay
        from repro.data import space_split

        ds = make_pems_bay(num_sensors=20, num_days=3, seed=11)
        split = space_split(ds.coords, "horizontal")
        train_ix, _ = temporal_split(ds.num_steps)
        report = model.fit(ds, split, WindowSpec(8, 8), train_ix)
        history = report.history
        assert history[-1] < history[0]

    def test_beats_historical_average(self, tiny_traffic_module, tiny_split_module, tiny_spec_module):
        cfg = STSMConfig(**{**_FAST, "epochs": 8, "window_stride": 4})
        stsm_res = evaluate_forecaster(
            make_stsm_nc(config=cfg), tiny_traffic_module, tiny_split_module,
            tiny_spec_module, max_test_windows=8,
        )
        naive_res = evaluate_forecaster(
            HistoricalAverageForecaster(), tiny_traffic_module, tiny_split_module,
            tiny_spec_module, max_test_windows=8,
        )
        assert stsm_res.metrics.rmse < naive_res.metrics.rmse * 1.2, (
            f"STSM {stsm_res.metrics.rmse:.2f} vs naive {naive_res.metrics.rmse:.2f}"
        )


class TestVariants:
    def test_variant_names(self):
        assert set(STSM_VARIANTS) == {
            "STSM", "STSM-NC", "STSM-R", "STSM-RNC",
            "STSM-trans", "STSM-gat", "STSM-rd-a", "STSM-rd-m",
        }

    def test_variant_flags(self):
        assert make_stsm_nc().config.contrastive is False
        assert make_stsm_r().config.selective_masking is False
        rnc = make_stsm_rnc()
        assert rnc.config.contrastive is False and rnc.config.selective_masking is False
        assert make_stsm_trans().config.temporal_module == "transformer"

    def test_dataset_parameter_lookup(self):
        model = make_stsm("pems-bay")
        assert model.config.contrastive_weight == 0.01
        assert model.config.top_k == 35
        model = make_stsm("airq")
        assert model.config.top_k == 5

    def test_each_trainable_variant_fits(self, tiny_traffic_module, tiny_split_module, tiny_spec_module):
        train_ix, _ = temporal_split(tiny_traffic_module.num_steps)
        cfg = STSMConfig(**{**_FAST, "epochs": 1})
        for name in ("STSM", "STSM-NC", "STSM-R", "STSM-RNC"):
            model = STSM_VARIANTS[name](config=cfg)
            report = model.fit(tiny_traffic_module, tiny_split_module, tiny_spec_module, train_ix)
            assert report.epochs >= 1
            starts = forecast_window_starts(tiny_traffic_module, tiny_spec_module, max_windows=2)
            assert model.predict(starts).shape[0] == 2


class TestDistanceModes:
    def test_euclidean_matrices(self, tiny_traffic_module):
        adj_d, pseudo_d = compute_distance_matrices(tiny_traffic_module, "euclidean")
        assert np.allclose(adj_d, pseudo_d)

    def test_road_modes(self, tiny_traffic_module):
        adj_d, pseudo_d = compute_distance_matrices(tiny_traffic_module, "road_adj_only")
        assert not np.allclose(adj_d, pseudo_d)
        assert np.all(np.isfinite(adj_d))
        adj_d2, pseudo_d2 = compute_distance_matrices(tiny_traffic_module, "road_all")
        assert np.allclose(adj_d2, pseudo_d2)

    def test_road_mode_without_network_rejected(self, tiny_airq_module):
        with pytest.raises(ValueError):
            compute_distance_matrices(tiny_airq_module, "road_all")

    def test_unknown_mode_rejected(self, tiny_traffic_module):
        with pytest.raises(ValueError):
            compute_distance_matrices(tiny_traffic_module, "hamming")


@pytest.fixture(scope="module")
def tiny_airq_module():
    from repro.data.synthetic import make_airq

    return make_airq(num_sensors=12, num_days=10, seed=3)
