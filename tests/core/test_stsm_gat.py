"""STSM-gat variant: config plumbing and end-to-end training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    STSM_VARIANTS,
    DualGraphAttention,
    STSMConfig,
    make_stsm_gat,
)
from repro.autograd import Tensor
from repro.data import WindowSpec, space_split, temporal_split
from repro.evaluation import evaluate_forecaster

_FAST = dict(
    hidden_dim=8,
    num_blocks=1,
    tcn_levels=2,
    gcn_depth=1,
    epochs=2,
    patience=2,
    batch_size=8,
    window_stride=8,
    top_k=5,
    gat_heads=2,
)


class TestConfig:
    def test_variant_registered(self):
        assert "STSM-gat" in STSM_VARIANTS

    def test_constructor_sets_module(self):
        model = make_stsm_gat(config=STSMConfig(**_FAST))
        assert model.config.spatial_module == "gat"
        assert model.name == "STSM-gat"

    def test_rejects_unknown_spatial_module(self):
        with pytest.raises(ValueError, match="spatial_module"):
            STSMConfig(spatial_module="hypergraph").validate()

    def test_rejects_indivisible_heads(self):
        config = STSMConfig(hidden_dim=9, spatial_module="gat", gat_heads=2)
        with pytest.raises(ValueError, match="gat_heads"):
            config.validate()

    def test_gcn_config_ignores_gat_heads(self):
        STSMConfig(hidden_dim=9, spatial_module="gcn", gat_heads=2).validate()


class TestDualGraphAttention:
    def test_fuses_two_adjacencies(self):
        rng = np.random.default_rng(0)
        module = DualGraphAttention(4, num_heads=2, rng=rng)
        n = 5
        a_s = (rng.random((n, n)) < 0.5).astype(float)
        a_dtw = (rng.random((n, n)) < 0.5).astype(float)
        features = Tensor(rng.normal(size=(2, 3, n, 4)))
        out = module(Tensor(a_s), Tensor(a_dtw), features)
        assert out.shape == (2, 3, n, 4)

    def test_output_is_elementwise_max_of_branches(self):
        rng = np.random.default_rng(1)
        module = DualGraphAttention(4, num_heads=1, rng=rng)
        n = 4
        a_s = np.ones((n, n)) - np.eye(n)
        a_dtw = np.eye(n)  # degenerate: self-loops only
        features = Tensor(rng.normal(size=(n, 4)))
        fused = module(Tensor(a_s), Tensor(a_dtw), features).numpy()
        spatial = module.spatial_branch(Tensor(a_s), features).numpy()
        temporal = module.temporal_branch(Tensor(a_dtw), features).numpy()
        assert np.allclose(fused, np.maximum(spatial, temporal))


class TestEndToEnd:
    def test_fit_predict(self, tiny_traffic, tiny_split, tiny_spec):
        model = make_stsm_gat(config=STSMConfig(**_FAST))
        result = evaluate_forecaster(
            model, tiny_traffic, tiny_split, tiny_spec, max_test_windows=4
        )
        assert np.isfinite(result.metrics.rmse)
        assert result.metrics.rmse < tiny_traffic.values.std() * 5

    def test_inductive_testing_on_larger_graph(self, tiny_traffic, tiny_split, tiny_spec):
        """Training runs on N_o nodes, testing on all N — shapes must adapt."""
        model = make_stsm_gat(config=STSMConfig(**_FAST))
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        out = model.predict(np.array([0, 1]))
        assert out.shape == (2, tiny_spec.horizon, len(tiny_split.unobserved))
