"""STSM network modules: GCN stack, TCN, full network forward/backward."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import (
    GCN,
    GCNL,
    DilatedTCN,
    DualGraphConv,
    GCNBranch,
    STSMConfig,
    STSMNetwork,
    TransformerTemporal,
)
from repro.graph import gcn_normalise


@pytest.fixture
def rng():
    return np.random.default_rng(21)


@pytest.fixture
def adjacency():
    adj = np.zeros((5, 5))
    for i in range(4):
        adj[i, i + 1] = adj[i + 1, i] = 1
    return Tensor(gcn_normalise(adj))


class TestGCNModules:
    def test_gcn_shape(self, rng, adjacency):
        layer = GCN(4, 6)
        out = layer(adjacency, Tensor(rng.normal(size=(2, 3, 5, 4))))
        assert out.shape == (2, 3, 5, 6)

    def test_gcn_propagates_neighbours(self, adjacency):
        layer = GCN(1, 1)
        layer.weight.data[...] = 1.0
        features = np.zeros((1, 5, 1))
        features[0, 0, 0] = 1.0
        out = layer(adjacency, Tensor(features)).numpy()
        assert out[0, 1, 0] > 0  # neighbour received mass
        assert out[0, 4, 0] == 0  # 4 hops away receives nothing in one conv

    def test_gcnl_gating_bounds(self, rng, adjacency):
        layer = GCNL(4, 4)
        value = layer.value_conv(adjacency, Tensor(rng.normal(size=(1, 5, 4)))).numpy()
        gated = layer(adjacency, Tensor(rng.normal(size=(1, 5, 4)))).numpy()
        assert np.all(np.abs(gated) <= np.abs(value).max() * 5)  # sanity scale

    def test_branch_depth_pooling(self, rng, adjacency):
        branch = GCNBranch(4, depth=3)
        out = branch(adjacency, Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 4)

    def test_branch_requires_positive_depth(self):
        with pytest.raises(ValueError):
            GCNBranch(4, depth=0)

    def test_dual_graph_conv_max_fusion(self, rng, adjacency):
        dual = DualGraphConv(4, depth=2)
        x = Tensor(rng.normal(size=(1, 5, 4)))
        fused = dual(adjacency, adjacency, x).numpy()
        spatial = dual.spatial_branch(adjacency, x).numpy()
        temporal = dual.temporal_branch(adjacency, x).numpy()
        assert np.allclose(fused, np.maximum(spatial, temporal))

    def test_gradients_reach_all_weights(self, rng, adjacency):
        dual = DualGraphConv(3, depth=2)
        out = dual(adjacency, adjacency, Tensor(rng.normal(size=(1, 5, 3))))
        out.sum().backward()
        # max-fusion routes gradient to at least one branch everywhere;
        # both branches' first layers must see some gradient.
        grads = [p.grad for p in dual.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


class TestTemporalModules:
    def test_tcn_shape_preserved(self, rng):
        tcn = DilatedTCN(channels=6, levels=3)
        out = tcn(Tensor(rng.normal(size=(2, 12, 4, 6))))
        assert out.shape == (2, 12, 4, 6)

    def test_tcn_requires_levels(self):
        with pytest.raises(ValueError):
            DilatedTCN(channels=4, levels=0)

    def test_transformer_shape_preserved(self, rng):
        trans = TransformerTemporal(channels=8, num_heads=2)
        out = trans(Tensor(rng.normal(size=(2, 6, 3, 8))))
        assert out.shape == (2, 6, 3, 8)

    def test_tcn_is_per_node(self, rng):
        """Temporal module must not mix information across nodes."""
        tcn = DilatedTCN(channels=4, levels=2, dropout=0.0)
        tcn.eval()
        x = rng.normal(size=(1, 8, 3, 4))
        base = tcn(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, :, 2, :] += 10.0  # change only node 2
        out = tcn(Tensor(perturbed)).numpy()
        assert np.allclose(out[0, :, 0], base[0, :, 0])
        assert np.allclose(out[0, :, 1], base[0, :, 1])
        assert not np.allclose(out[0, :, 2], base[0, :, 2])


class TestSTSMNetwork:
    def _forward(self, config, batch=2, time=8, nodes=5):
        rng = np.random.default_rng(0)
        net = STSMNetwork(config, horizon=time, input_length=time)
        adj = np.zeros((nodes, nodes))
        for i in range(nodes - 1):
            adj[i, i + 1] = adj[i + 1, i] = 1
        a = Tensor(gcn_normalise(adj))
        x = Tensor(rng.normal(size=(batch, time, nodes, 1)))
        te = Tensor(rng.uniform(size=(batch, time, 1)))
        return net, net(x, te, a, a)

    def test_output_shapes(self):
        config = STSMConfig(hidden_dim=8, num_blocks=2, tcn_levels=2, gcn_depth=2)
        _net, (pred, z) = self._forward(config)
        assert pred.shape == (2, 8, 5, 1)
        assert z.shape == (2, config.contrastive_dim)

    def test_transformer_variant_shapes(self):
        config = STSMConfig(
            hidden_dim=8, num_blocks=1, gcn_depth=1,
            temporal_module="transformer", attention_heads=2,
        )
        _net, (pred, z) = self._forward(config)
        assert pred.shape == (2, 8, 5, 1)

    def test_different_horizon(self):
        config = STSMConfig(hidden_dim=8, num_blocks=1, gcn_depth=1)
        rng = np.random.default_rng(0)
        net = STSMNetwork(config, horizon=4, input_length=8)
        adj = Tensor(gcn_normalise(np.eye(3)))
        pred, _z = net(
            Tensor(rng.normal(size=(2, 8, 3, 1))),
            Tensor(rng.uniform(size=(2, 8, 1))),
            adj,
            adj,
        )
        assert pred.shape == (2, 4, 3, 1)

    def test_backward_reaches_every_parameter(self):
        config = STSMConfig(hidden_dim=8, num_blocks=2, tcn_levels=2, gcn_depth=2, dropout=0.0)
        net, (pred, z) = self._forward(config)
        (pred.sum() + z.sum()).backward()
        missing = [name for name, p in net.named_parameters() if p.grad is None]
        assert not missing, f"parameters with no gradient: {missing}"

    def test_inductive_node_count(self):
        """Same weights must run on graphs of different sizes."""
        config = STSMConfig(hidden_dim=8, num_blocks=1, gcn_depth=1)
        rng = np.random.default_rng(0)
        net = STSMNetwork(config, horizon=6, input_length=6)
        for nodes in (4, 9):
            adj = Tensor(gcn_normalise(np.eye(nodes)))
            pred, _ = net(
                Tensor(rng.normal(size=(1, 6, nodes, 1))),
                Tensor(rng.uniform(size=(1, 6, 1))),
                adj,
                adj,
            )
            assert pred.shape == (1, 6, nodes, 1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            STSMConfig(temporal_module="lstm").validate()
        with pytest.raises(ValueError):
            STSMConfig(mask_ratio=0.0).validate()
        with pytest.raises(ValueError):
            STSMConfig(distance_mode="chebyshev").validate()
        with pytest.raises(ValueError):
            STSMConfig(hidden_dim=0).validate()

    def test_config_replace(self):
        config = STSMConfig()
        other = config.replace(hidden_dim=64)
        assert other.hidden_dim == 64
        assert config.hidden_dim == 32
