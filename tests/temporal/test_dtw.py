"""DTW correctness and properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.temporal import (
    daily_profile,
    downsample_profile,
    dtw_distance,
    dtw_distance_matrix,
)


class TestDTWDistance:
    def test_identical_series_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert dtw_distance(a, a) == 0.0

    def test_known_value(self):
        # Optimal alignment of [0,0,1] vs [0,1,1] warps around the step.
        assert dtw_distance([0.0, 0.0, 1.0], [0.0, 1.0, 1.0]) == pytest.approx(0.0)

    def test_constant_offset(self):
        a = np.zeros(4)
        b = np.ones(4)
        assert dtw_distance(a, b) == pytest.approx(4.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=6), rng.normal(size=6)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_shift_invariance_beats_euclidean(self):
        # DTW should align a shifted copy nearly perfectly.
        t = np.linspace(0, 2 * np.pi, 40)
        a = np.sin(t)
        b = np.roll(a, 3)
        assert dtw_distance(a, b) < np.abs(a - b).sum()

    def test_different_lengths(self):
        assert dtw_distance([0.0, 1.0], [0.0, 0.5, 1.0]) == pytest.approx(0.5)

    def test_band_restricts_warp(self):
        a = np.array([0.0, 0.0, 0.0, 1.0])
        b = np.array([1.0, 0.0, 0.0, 0.0])
        unbounded = dtw_distance(a, b)
        banded = dtw_distance(a, b, band=1)
        assert banded >= unbounded

    def test_band_narrower_than_length_gap_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance(np.zeros(3), np.zeros(8), band=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance(np.array([]), np.array([1.0]))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=2, max_value=12))
    def test_non_negative_and_symmetric(self, n, m):
        rng = np.random.default_rng(n * 100 + m)
        a, b = rng.normal(size=n), rng.normal(size=m)
        d = dtw_distance(a, b)
        assert d >= 0
        assert d == pytest.approx(dtw_distance(b, a))


class TestDTWMatrix:
    def test_matches_scalar_implementation(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=(5, 8))
        matrix = dtw_distance_matrix(series)
        for i in range(5):
            for j in range(5):
                assert matrix[i, j] == pytest.approx(dtw_distance(series[i], series[j]))

    def test_cross_matrix_matches(self):
        rng = np.random.default_rng(2)
        left = rng.normal(size=(3, 6))
        right = rng.normal(size=(4, 6))
        matrix = dtw_distance_matrix(left, right)
        assert matrix.shape == (3, 4)
        assert matrix[1, 2] == pytest.approx(dtw_distance(left[1], right[2]))

    def test_banded_matrix_matches_scalar(self):
        rng = np.random.default_rng(3)
        series = rng.normal(size=(4, 7))
        matrix = dtw_distance_matrix(series, band=2)
        for i in range(4):
            for j in range(4):
                assert matrix[i, j] == pytest.approx(dtw_distance(series[i], series[j], band=2))

    def test_single_series(self):
        assert dtw_distance_matrix(np.ones((1, 5))).shape == (1, 1)


class TestPairChunking:
    """chunk_pairs bounds memory without changing a single bit."""

    def test_chunked_self_matrix_bitwise_equal(self):
        rng = np.random.default_rng(11)
        series = rng.normal(size=(9, 12))  # 36 self pairs
        full = dtw_distance_matrix(series, chunk_pairs=None)
        for chunk in (1, 5, 36, 1000):
            chunked = dtw_distance_matrix(series, chunk_pairs=chunk)
            np.testing.assert_array_equal(chunked, full)

    def test_chunked_cross_matrix_bitwise_equal(self):
        rng = np.random.default_rng(12)
        left = rng.normal(size=(5, 10))
        right = rng.normal(size=(7, 10))  # 35 cross pairs
        full = dtw_distance_matrix(left, right, chunk_pairs=None)
        for chunk in (1, 8, 35):
            chunked = dtw_distance_matrix(left, right, chunk_pairs=chunk)
            np.testing.assert_array_equal(chunked, full)

    def test_chunked_banded_bitwise_equal(self):
        rng = np.random.default_rng(13)
        series = rng.normal(size=(6, 9))
        full = dtw_distance_matrix(series, band=3, chunk_pairs=None)
        chunked = dtw_distance_matrix(series, band=3, chunk_pairs=4)
        np.testing.assert_array_equal(chunked, full)

    def test_nonpositive_chunk_disables_chunking(self):
        rng = np.random.default_rng(14)
        series = rng.normal(size=(4, 6))
        full = dtw_distance_matrix(series, chunk_pairs=None)
        np.testing.assert_array_equal(dtw_distance_matrix(series, chunk_pairs=0), full)
        np.testing.assert_array_equal(dtw_distance_matrix(series, chunk_pairs=-3), full)

    def test_default_chunk_is_bounded(self):
        from repro.temporal.dtw import DEFAULT_CHUNK_PAIRS

        assert 0 < DEFAULT_CHUNK_PAIRS <= 1 << 16


class TestProfiles:
    def test_daily_profile_shape(self):
        values = np.arange(48, dtype=float).reshape(12, 4)
        out = daily_profile(values, steps_per_day=4)
        assert out.shape == (4, 4)

    def test_daily_profile_averages_days(self):
        # Two days, two steps/day, one sensor: [1, 2], [3, 4] -> mean [2, 3].
        values = np.array([[1.0], [2.0], [3.0], [4.0]])
        out = daily_profile(values, steps_per_day=2)
        assert np.allclose(out, [[2.0, 3.0]])

    def test_partial_day_padded(self):
        values = np.array([[1.0], [2.0]])
        out = daily_profile(values, steps_per_day=4)
        assert out.shape == (1, 4)
        assert np.allclose(out[0, :2], [1.0, 2.0])

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError):
            daily_profile(np.ones((4, 2)), steps_per_day=0)

    def test_downsample_means(self):
        profiles = np.arange(8, dtype=float)[None, :]
        out = downsample_profile(profiles, 4)
        assert np.allclose(out, [[0.5, 2.5, 4.5, 6.5]])

    def test_downsample_noop_when_coarser(self):
        profiles = np.ones((2, 4))
        assert downsample_profile(profiles, 10).shape == (2, 4)

    def test_downsample_preserves_global_mean(self):
        rng = np.random.default_rng(4)
        profiles = rng.normal(size=(3, 24))
        out = downsample_profile(profiles, 6)
        assert np.allclose(out.mean(axis=1), profiles.mean(axis=1), atol=1e-9)

    def test_downsample_invalid_resolution(self):
        with pytest.raises(ValueError):
            downsample_profile(np.ones((1, 8)), 0)
