"""Temporal adjacency (one-way rule) and time-of-day features."""

from __future__ import annotations

import numpy as np
import pytest

from repro.temporal import (
    build_dtw_adjacency,
    interval_ids,
    normalised_time_encoding,
    temporal_adjacency,
    time_of_day_window,
)


class TestTemporalAdjacency:
    def test_symmetric_among_observed(self):
        distances = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 4.0], [5.0, 4.0, 0.0]])
        adj = temporal_adjacency(
            distances, None, np.array([0, 1, 2]), None, num_nodes=3, q_kk=1
        )
        assert np.allclose(adj, adj.T)
        assert adj[0, 1] == 1.0  # closest pair linked

    def test_one_way_into_targets(self):
        observed = np.array([0, 1])
        targets = np.array([2])
        obs_d = np.array([[0.0, 2.0], [2.0, 0.0]])
        cross = np.array([[1.0], [3.0]])  # node 0 most similar to target
        adj = temporal_adjacency(obs_d, cross, observed, targets, num_nodes=3)
        assert adj[2, 0] == 1.0  # target aggregates from observed 0
        assert adj[0, 2] == 0.0  # never the reverse
        assert adj[2, 1] == 0.0  # only q_ku=1 edge

    def test_q_ku_budget(self):
        observed = np.array([0, 1, 2])
        targets = np.array([3])
        obs_d = np.zeros((3, 3))
        cross = np.array([[1.0], [2.0], [3.0]])
        adj = temporal_adjacency(obs_d, cross, observed, targets, num_nodes=4, q_kk=0, q_ku=2)
        assert adj[3, 0] == 1.0 and adj[3, 1] == 1.0 and adj[3, 2] == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            temporal_adjacency(np.zeros((2, 3)), None, np.array([0, 1]), None, 4)

    def test_cross_shape_validation(self):
        with pytest.raises(ValueError):
            temporal_adjacency(
                np.zeros((2, 2)), np.zeros((3, 1)), np.array([0, 1]), np.array([2]), 3
            )

    def test_build_from_values_connects_similar(self):
        # Two observed sine sensors, one observed cosine sensor, and one
        # unobserved node whose pseudo-obs equal the sine pattern: its
        # q_ku edge should come from a sine sensor.
        steps = 48
        t = np.linspace(0, 4 * np.pi, steps)
        sine, cosine = np.sin(t), np.cos(t)
        values = np.stack([sine, sine * 1.1, cosine, sine * 0.9], axis=1)
        adj = build_dtw_adjacency(
            values,
            observed_index=np.array([0, 1, 2]),
            target_index=np.array([3]),
            steps_per_day=24,
            num_nodes=4,
            resolution=None,
        )
        assert adj[3, 0] == 1.0 or adj[3, 1] == 1.0
        assert adj[3, 2] == 0.0


class TestTimeFeatures:
    def test_interval_ids_wrap(self):
        ids = interval_ids(5, steps_per_day=3, start=2)
        assert list(ids) == [2, 0, 1, 2, 0]

    def test_window_matches_interval_ids(self):
        assert list(time_of_day_window(10, 4, 12)) == [10, 11, 0, 1]

    def test_invalid_steps_per_day(self):
        with pytest.raises(ValueError):
            interval_ids(4, steps_per_day=0)

    def test_normalised_encoding_range(self):
        ids = interval_ids(24, steps_per_day=24)
        enc = normalised_time_encoding(ids, 24)
        assert enc.min() == 0.0
        assert enc.max() == 1.0

    def test_normalised_encoding_degenerate(self):
        enc = normalised_time_encoding(np.array([0, 0]), steps_per_day=1)
        assert np.allclose(enc, 0.0)
