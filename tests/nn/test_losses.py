"""Loss function semantics, including the paper's NT-Xent loss (Eq. 17)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, check_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestMSE:
    def test_zero_for_perfect_prediction(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert nn.mse_loss(x, Tensor(x.numpy().copy())).item() == 0.0

    def test_known_value(self):
        pred = Tensor(np.array([1.0, 3.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert nn.mse_loss(pred, target).item() == pytest.approx(5.0)

    def test_mask_restricts(self):
        pred = Tensor(np.array([1.0, 100.0]))
        target = Tensor(np.array([0.0, 0.0]))
        mask = np.array([1.0, 0.0])
        assert nn.mse_loss(pred, target, mask).item() == pytest.approx(1.0)

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            nn.mse_loss(Tensor([1.0]), Tensor([0.0]), np.array([0.0]))

    def test_gradcheck(self, rng):
        pred = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        target = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda p: nn.mse_loss(p, target), [pred])


class TestMAE:
    def test_known_value(self):
        pred = Tensor(np.array([1.0, -3.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert nn.mae_loss(pred, target).item() == pytest.approx(2.0)

    def test_masked(self):
        pred = Tensor(np.array([2.0, 100.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert nn.mae_loss(pred, target, np.array([1.0, 0.0])).item() == pytest.approx(2.0)


class TestBCE:
    def test_confident_correct_is_small(self):
        prob = Tensor(np.array([[0.999], [0.001]]))
        target = Tensor(np.array([[1.0], [0.0]]))
        assert nn.bce_loss(prob, target).item() < 0.01

    def test_confident_wrong_is_large(self):
        prob = Tensor(np.array([[0.001]]))
        target = Tensor(np.array([[1.0]]))
        assert nn.bce_loss(prob, target).item() > 4.0

    def test_extreme_probabilities_are_clipped(self):
        prob = Tensor(np.array([[1.0], [0.0]]))
        target = Tensor(np.array([[0.0], [1.0]]))
        out = nn.bce_loss(prob, target).item()
        assert np.isfinite(out)


class TestNTXent:
    def test_aligned_pairs_give_lower_loss(self, rng):
        anchor = Tensor(rng.normal(size=(6, 8)))
        aligned = Tensor(anchor.numpy() + 0.01 * rng.normal(size=(6, 8)))
        shuffled = Tensor(rng.normal(size=(6, 8)))
        low = nn.nt_xent_loss(anchor, aligned).item()
        high = nn.nt_xent_loss(anchor, shuffled).item()
        assert low < high

    def test_requires_two_samples(self, rng):
        with pytest.raises(ValueError):
            nn.nt_xent_loss(Tensor(rng.normal(size=(1, 4))), Tensor(rng.normal(size=(1, 4))))

    def test_temperature_sharpens(self, rng):
        anchor = Tensor(rng.normal(size=(4, 8)))
        positive = Tensor(anchor.numpy() + 0.1)
        sharp = nn.nt_xent_loss(anchor, positive, temperature=0.1).item()
        soft = nn.nt_xent_loss(anchor, positive, temperature=10.0).item()
        assert sharp < soft

    def test_gradients_flow_to_both_views(self, rng):
        anchor = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        positive = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        nn.nt_xent_loss(anchor, positive).backward()
        assert anchor.grad is not None
        assert positive.grad is not None

    def test_gradcheck(self, rng):
        anchor = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        positive = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda a, p: nn.nt_xent_loss(a, p), [anchor, positive], atol=1e-4)


class TestCosineMatrix:
    def test_self_similarity_is_one(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        sims = nn.cosine_similarity_matrix(x, x).numpy()
        assert np.allclose(np.diag(sims), 1.0, atol=1e-6)

    def test_range(self, rng):
        a = Tensor(rng.normal(size=(5, 6)))
        b = Tensor(rng.normal(size=(7, 6)))
        sims = nn.cosine_similarity_matrix(a, b).numpy()
        assert sims.shape == (5, 7)
        assert np.all(sims <= 1.0 + 1e-9) and np.all(sims >= -1.0 - 1e-9)
