"""LSTM, Embedding layer, and Huber loss (substrate extensions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, check_gradients
from repro.optim import Adam


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestLSTM:
    def test_shapes(self, rng):
        lstm = nn.LSTM(3, 5)
        seq, (h, c) = lstm(Tensor(rng.normal(size=(2, 7, 3))))
        assert seq.shape == (2, 7, 5)
        assert h.shape == (2, 5) and c.shape == (2, 5)

    def test_forget_bias_initialised_to_one(self):
        cell = nn.LSTMCell(2, 4)
        assert np.allclose(cell.bias_f.data, 1.0)

    def test_hidden_bounded(self, rng):
        lstm = nn.LSTM(2, 4)
        seq, _state = lstm(Tensor(rng.normal(size=(3, 6, 2)) * 10))
        assert np.all(np.abs(seq.numpy()) <= 1.0)

    def test_gradients_flow(self, rng):
        lstm = nn.LSTM(2, 3)
        _seq, (h, _c) = lstm(Tensor(rng.normal(size=(2, 4, 2))))
        h.sum().backward()
        assert all(p.grad is not None for p in lstm.parameters())

    def test_state_carries_information(self, rng):
        lstm = nn.LSTM(2, 3)
        x = Tensor(rng.normal(size=(1, 4, 2)))
        _s1, (h1, c1) = lstm(x)
        _s2, (h2, _c2) = lstm(x, state=(h1, c1))
        assert not np.allclose(h1.numpy(), h2.numpy())

    def test_learns_simple_memory_task(self, rng):
        """Predict the first input element from the final hidden state."""
        lstm = nn.LSTM(1, 8)
        head = nn.Linear(8, 1)
        params = list(lstm.parameters()) + list(head.parameters())
        opt = Adam(params, lr=0.02)
        x = rng.normal(size=(64, 5, 1))
        y = x[:, 0, :]
        first = None
        for _ in range(150):
            opt.zero_grad()
            _seq, (h, _c) = lstm(Tensor(x))
            loss = nn.mse_loss(head(h), Tensor(y))
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
        assert loss.item() < first * 0.5


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = nn.Embedding(12, 5)
        out = emb(np.array([[0, 3], [11, 1]]))
        assert out.shape == (2, 2, 5)

    def test_gradients_only_for_used_rows(self):
        emb = nn.Embedding(6, 2)
        emb(np.array([1, 4])).sum().backward()
        grad = emb.weight.grad
        used = {1, 4}
        for row in range(6):
            if row in used:
                assert np.any(grad[row] != 0)
            else:
                assert np.all(grad[row] == 0)


class TestHuberLoss:
    def test_quadratic_region_matches_half_mse(self):
        pred = Tensor(np.array([0.5]))
        target = Tensor(np.array([0.0]))
        assert nn.huber_loss(pred, target, delta=1.0).item() == pytest.approx(0.125)

    def test_linear_region(self):
        pred = Tensor(np.array([3.0]))
        target = Tensor(np.array([0.0]))
        # 0.5 * delta^2 + delta * (|e| - delta) = 0.5 + 2 = 2.5
        assert nn.huber_loss(pred, target, delta=1.0).item() == pytest.approx(2.5)

    def test_less_sensitive_to_outliers_than_mse(self, rng):
        pred = Tensor(np.array([0.1, 0.1, 10.0]))
        target = Tensor(np.zeros(3))
        huber = nn.huber_loss(pred, target, delta=1.0).item()
        mse = nn.mse_loss(pred, target).item()
        assert huber < mse

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            nn.huber_loss(Tensor([1.0]), Tensor([0.0]), delta=0.0)

    def test_gradcheck(self, rng):
        pred = Tensor(rng.normal(size=(4,)) * 2 + 0.05, requires_grad=True)
        target = Tensor(rng.normal(size=(4,)))
        check_gradients(lambda p: nn.huber_loss(p, target), [pred], atol=1e-4)
