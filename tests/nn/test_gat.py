"""Graph attention layer: masking, shapes, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import GraphAttention


def _ring_adjacency(n: int) -> np.ndarray:
    adjacency = np.zeros((n, n))
    for i in range(n):
        adjacency[i, (i + 1) % n] = 1.0
        adjacency[i, (i - 1) % n] = 1.0
    return adjacency


class TestShapes:
    def test_two_dimensional_input(self):
        gat = GraphAttention(4, 6, num_heads=2, rng=np.random.default_rng(0))
        out = gat(_ring_adjacency(5), Tensor(np.random.default_rng(1).normal(size=(5, 4))))
        assert out.shape == (5, 6)

    def test_four_dimensional_input(self):
        gat = GraphAttention(4, 4, num_heads=1, rng=np.random.default_rng(0))
        features = Tensor(np.random.default_rng(1).normal(size=(2, 3, 5, 4)))
        assert gat(_ring_adjacency(5), features).shape == (2, 3, 5, 4)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            GraphAttention(4, 5, num_heads=2)

    def test_accepts_tensor_adjacency(self):
        gat = GraphAttention(3, 3, num_heads=1, rng=np.random.default_rng(0))
        out = gat(
            Tensor(_ring_adjacency(4)),
            Tensor(np.random.default_rng(1).normal(size=(4, 3))),
        )
        assert out.shape == (4, 3)


class TestMasking:
    def test_non_neighbour_features_do_not_leak(self):
        """Perturbing a non-neighbour leaves a node's output unchanged."""
        n = 6
        adjacency = _ring_adjacency(n)  # node 0's neighbours: 1 and 5
        gat = GraphAttention(4, 4, num_heads=2, rng=np.random.default_rng(0))
        base = np.random.default_rng(1).normal(size=(n, 4))
        out_before = gat(adjacency, Tensor(base)).numpy()[0]
        perturbed = base.copy()
        perturbed[3] += 10.0  # node 3 is not adjacent to node 0
        out_after = gat(adjacency, Tensor(perturbed)).numpy()[0]
        assert np.allclose(out_before, out_after)

    def test_neighbour_features_do_leak(self):
        n = 6
        adjacency = _ring_adjacency(n)
        gat = GraphAttention(4, 4, num_heads=2, rng=np.random.default_rng(0))
        base = np.random.default_rng(1).normal(size=(n, 4))
        out_before = gat(adjacency, Tensor(base)).numpy()[0]
        perturbed = base.copy()
        perturbed[1] += 10.0  # node 1 IS adjacent to node 0
        out_after = gat(adjacency, Tensor(perturbed)).numpy()[0]
        assert not np.allclose(out_before, out_after)

    def test_isolated_node_attends_only_itself(self):
        adjacency = np.zeros((3, 3))
        adjacency[1, 2] = adjacency[2, 1] = 1.0  # node 0 isolated
        gat = GraphAttention(4, 4, num_heads=1, rng=np.random.default_rng(0))
        features = np.random.default_rng(1).normal(size=(3, 4))
        weights = gat.attention_weights(adjacency, Tensor(features))
        assert weights[0, 0, 0] == pytest.approx(1.0)
        assert weights[0, 0, 1] == pytest.approx(0.0)

    def test_attention_rows_are_distributions(self):
        adjacency = _ring_adjacency(7)
        gat = GraphAttention(4, 8, num_heads=2, rng=np.random.default_rng(0))
        features = Tensor(np.random.default_rng(1).normal(size=(7, 4)))
        weights = gat.attention_weights(adjacency, features)
        assert weights.shape == (2, 7, 7)
        assert np.allclose(weights.sum(axis=-1), 1.0)
        assert np.all(weights >= 0.0)

    def test_zero_weight_on_non_edges(self):
        adjacency = _ring_adjacency(6)
        gat = GraphAttention(3, 3, num_heads=1, rng=np.random.default_rng(0))
        weights = gat.attention_weights(
            adjacency, Tensor(np.random.default_rng(1).normal(size=(6, 3)))
        )
        allowed = adjacency.astype(bool) | np.eye(6, dtype=bool)
        assert weights[0][~allowed].max() == 0.0


class TestGradients:
    def test_gradient_through_attention(self):
        adjacency = _ring_adjacency(4)
        gat = GraphAttention(3, 3, num_heads=1, rng=np.random.default_rng(0))
        features = Tensor(np.random.default_rng(1).normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda f: gat(adjacency, f), [features], atol=1e-4, rtol=1e-3)

    def test_parameters_receive_gradients(self):
        adjacency = _ring_adjacency(5)
        gat = GraphAttention(4, 4, num_heads=2, rng=np.random.default_rng(0))
        features = Tensor(np.random.default_rng(1).normal(size=(5, 4)))
        gat(adjacency, features).sum().backward()
        for parameter in gat.parameters():
            assert parameter.grad is not None
            assert np.any(parameter.grad != 0.0)
