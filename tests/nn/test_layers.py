"""Layer behaviour: shapes, modes, parameter registration, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, check_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestLinear:
    def test_shape(self, rng):
        layer = nn.Linear(4, 7)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 7)

    def test_leading_axes_preserved(self, rng):
        layer = nn.Linear(4, 2)
        out = layer(Tensor(rng.normal(size=(2, 3, 4))))
        assert out.shape == (2, 3, 2)

    def test_no_bias(self):
        layer = nn.Linear(3, 3, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_gradients_flow_to_weights(self, rng):
        layer = nn.Linear(3, 2)
        layer(Tensor(rng.normal(size=(4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_gradcheck(self, rng):
        layer = nn.Linear(3, 2)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda t: layer(t), [x])


class TestConv1dLayer:
    def test_same_padding(self, rng):
        layer = nn.Conv1d(2, 3, kernel_size=3, dilation=2, padding="same")
        out = layer(Tensor(rng.normal(size=(4, 2, 12))))
        assert out.shape == (4, 3, 12)

    def test_same_padding_requires_odd_effective_kernel(self):
        with pytest.raises(ValueError):
            nn.Conv1d(1, 1, kernel_size=2, padding="same")


class TestDropoutLayer:
    def test_train_vs_eval(self, rng):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        train_out = layer(x)
        layer.eval()
        eval_out = layer(x)
        assert (train_out.numpy() == 0).any()
        assert np.allclose(eval_out.numpy(), 1.0)


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        layer = nn.LayerNorm(8)
        out = layer(Tensor(rng.normal(2.0, 3.0, size=(5, 8)))).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck(self, rng):
        layer = nn.LayerNorm(4)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda t: layer(t), [x], atol=1e-4)


class TestModuleMechanics:
    def test_named_parameters_nested(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        names = [name for name, _p in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.2.bias" in names

    def test_num_parameters(self):
        model = nn.Linear(3, 2)
        assert model.num_parameters() == 3 * 2 + 2

    def test_state_dict_roundtrip(self, rng):
        model = nn.Sequential(nn.Linear(2, 3), nn.Tanh(), nn.Linear(3, 1))
        state = model.state_dict()
        for param in model.parameters():
            param.data += 1.0
        model.load_state_dict(state)
        fresh = model.state_dict()
        for key in state:
            assert np.allclose(state[key], fresh[key])

    def test_load_state_dict_rejects_mismatch(self):
        model = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(2)})

    def test_load_state_dict_rejects_bad_shape(self):
        model = nn.Linear(2, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_recursive(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self, rng):
        model = nn.Linear(3, 1)
        model(Tensor(rng.normal(size=(2, 3)))).sum().backward()
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_module_list_indexing(self):
        ml = nn.ModuleList([nn.Linear(1, 1), nn.Linear(1, 1)])
        assert len(ml) == 2
        assert isinstance(ml[1], nn.Linear)


class TestRecurrent:
    def test_gru_shapes(self, rng):
        gru = nn.GRU(3, 5)
        seq, final = gru(Tensor(rng.normal(size=(2, 7, 3))))
        assert seq.shape == (2, 7, 5)
        assert final.shape == (2, 5)

    def test_gru_gradients_flow(self, rng):
        gru = nn.GRU(2, 4)
        _seq, final = gru(Tensor(rng.normal(size=(2, 5, 2))))
        final.sum().backward()
        grads = [p.grad for p in gru.parameters()]
        assert all(g is not None for g in grads)

    def test_gru_initial_state_used(self, rng):
        gru = nn.GRU(2, 3)
        x = Tensor(rng.normal(size=(1, 4, 2)))
        _s1, f1 = gru(x)
        _s2, f2 = gru(x, h0=Tensor(np.ones((1, 3))))
        assert not np.allclose(f1.numpy(), f2.numpy())

    def test_gru_cell_bounded(self, rng):
        cell = nn.GRUCell(2, 3)
        h = cell(Tensor(rng.normal(size=(4, 2)) * 10), Tensor(np.zeros((4, 3))))
        assert np.all(np.abs(h.numpy()) <= 1.0)


class TestAttention:
    def test_mha_shape(self, rng):
        mha = nn.MultiHeadAttention(8, 2)
        out = mha(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_mha_dim_divisibility(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(7, 2)

    def test_encoder_layer_residual(self, rng):
        enc = nn.TransformerEncoderLayer(8, 2)
        x = Tensor(rng.normal(size=(2, 5, 8)))
        out = enc(x)
        assert out.shape == x.shape

    def test_positional_encoding_range(self):
        table = nn.positional_encoding(20, 8)
        assert table.shape == (20, 8)
        assert np.all(np.abs(table) <= 1.0)

    def test_cross_attention(self, rng):
        mha = nn.MultiHeadAttention(8, 2)
        q = Tensor(rng.normal(size=(2, 3, 8)))
        kv = Tensor(rng.normal(size=(2, 6, 8)))
        out = mha(q, kv, kv)
        assert out.shape == (2, 3, 8)
