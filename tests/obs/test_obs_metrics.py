"""Metrics registry: instruments, collectors, rendering."""

import threading

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    render_prometheus,
)


class TestCounter:
    def test_counts_up(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = Counter("c_total", "")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = Counter("c_total", "", ("model",))
        counter.labels(model="a").inc()
        counter.labels(model="a").inc()
        counter.labels(model="b").inc()
        assert counter.labels(model="a").value == 2
        assert counter.labels(model="b").value == 1

    def test_labelless_use_of_labelled_family_rejected(self):
        counter = Counter("c_total", "", ("model",))
        with pytest.raises(ValueError, match="use .labels"):
            counter.inc()

    def test_wrong_label_names_rejected(self):
        counter = Counter("c_total", "", ("model",))
        with pytest.raises(ValueError, match="do not match"):
            counter.labels(nope="x")

    def test_thread_safety(self):
        counter = Counter("c_total", "")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("g", "")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value == 3


class TestHistogram:
    def test_empty_summary(self):
        hist = Histogram("h_seconds", "")
        assert hist.summary() == {
            "count": 0, "sum": 0.0, "mean": None, "max": None,
            "p50": None, "p95": None, "p99": None,
        }
        assert hist.percentile(50) is None

    def test_exact_count_sum_mean_max(self):
        hist = Histogram("h_seconds", "")
        for value in (0.001, 0.002, 0.004):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.007)
        assert summary["mean"] == pytest.approx(0.007 / 3)
        assert summary["max"] == pytest.approx(0.004)

    def test_percentiles_ordered_and_within_bucket(self):
        hist = Histogram("h_seconds", "", buckets=LATENCY_BUCKETS)
        for _ in range(90):
            hist.observe(0.0008)  # (0.0005, 0.001] bucket
        for _ in range(10):
            hist.observe(0.08)  # (0.05, 0.1] bucket
        p50, p95, p99 = (hist.percentile(q) for q in (50, 95, 99))
        assert 0.0005 <= p50 <= 0.001
        assert 0.05 <= p95 <= 0.1
        assert p50 <= p95 <= p99 <= 0.1

    def test_above_top_bucket_clamps_to_observed_max(self):
        # The +inf bucket interpolates toward the observed max, never
        # toward infinity: one 5 s outlier keeps p99 finite and <= 5 s.
        hist = Histogram("h_seconds", "", buckets=(0.1, 1.0))
        hist.observe(5.0)
        assert 1.0 <= hist.percentile(99) <= 5.0
        assert hist.percentile(100) == pytest.approx(5.0)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", "", buckets=(1.0, 0.1))


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "x")
        assert registry.counter("a_total", "y") is first

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a_total")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", labelnames=("model",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("a_total", labelnames=("other",))

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h_seconds").observe(0.01)
        snapshot = registry.as_dict()
        assert snapshot["counters"]["c_total"] == 2
        assert snapshot["gauges"]["g"] == 7
        assert snapshot["histograms"]["h_seconds"]["count"] == 1
        assert snapshot["collected"] == {}

    def test_collector_samples_appear(self):
        registry = MetricsRegistry()
        registry.register_collector(
            "src", lambda: [("x_total", {"model": "m"}, 3)]
        )
        snapshot = registry.as_dict()
        assert snapshot["collected"]["src"] == {'x_total{model="m"}': 3.0}

    def test_collector_replace_semantics(self):
        registry = MetricsRegistry()
        registry.register_collector("src", lambda: [("x_total", {}, 1)])
        registry.register_collector("src", lambda: [("x_total", {}, 2)])
        assert registry.as_dict()["collected"]["src"] == {"x_total": 2.0}

    def test_raising_collector_surfaces_error_not_exception(self):
        registry = MetricsRegistry()

        def bad():
            raise RuntimeError("boom")

        registry.register_collector("bad", bad)
        registry.register_collector("good", lambda: [("ok_total", {}, 1)])
        snapshot = registry.as_dict()
        assert snapshot["collector_errors"]["bad"] == "RuntimeError: boom"
        assert snapshot["collected"]["good"] == {"ok_total": 1.0}
        # Rendering must survive too.
        assert "ok_total 1" in registry.render()

    def test_unregister_collector(self):
        registry = MetricsRegistry()
        registry.register_collector("src", lambda: [("x_total", {}, 1)])
        assert registry.unregister_collector("src")
        assert not registry.unregister_collector("src")
        assert registry.as_dict()["collected"] == {}


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "Requests", ("model",)).labels(
            model="stsm"
        ).inc(4)
        registry.gauge("depth").set(2)
        text = render_prometheus(registry)
        assert "# HELP reqs_total Requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{model="stsm"} 4' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = render_prometheus(registry)
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text

    def test_multiple_registries_concatenate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("a_total").inc()
        b.counter("b_total").inc()
        text = render_prometheus(a, b)
        assert "a_total 1" in text and "b_total 1" in text

    def test_collector_samples_render_untyped(self):
        registry = MetricsRegistry()
        registry.register_collector(
            "src", lambda: [("x_total", {"worker": "w0"}, 9)]
        )
        text = render_prometheus(registry)
        assert "# TYPE x_total untyped" in text
        assert 'x_total{worker="w0"} 9' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


def test_global_registry_is_a_singleton():
    assert global_registry() is global_registry()
