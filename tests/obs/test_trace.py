"""Tracing: contexts, recorder, ambient propagation, span helpers."""

import json
import threading

import pytest

from repro.obs.trace import (
    TraceContext,
    TraceRecorder,
    current_trace,
    mint_span_id,
    mint_trace_id,
    record_span,
    span,
    use_trace,
)


class TestIds:
    def test_trace_ids_are_16_hex(self):
        tid = mint_trace_id()
        assert len(tid) == 16
        int(tid, 16)

    def test_span_ids_are_8_hex(self):
        sid = mint_span_id()
        assert len(sid) == 8
        int(sid, 16)

    def test_ids_are_fresh(self):
        assert len({mint_trace_id() for _ in range(64)}) == 64


class TestTraceContext:
    def test_child_keeps_trace_id(self):
        ctx = TraceContext("t" * 16, "a" * 8)
        child = ctx.child("b" * 8)
        assert child.trace_id == ctx.trace_id
        assert child.span_id == "b" * 8


class TestRecorder:
    def test_disabled_recorder_is_a_noop(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record({"trace": "t", "span": "s"})
        assert recorder.spans() == []
        assert recorder.recorded == 0

    def test_ring_buffer_drops_oldest(self):
        recorder = TraceRecorder(maxlen=3, enabled=True)
        for index in range(5):
            recorder.record({"trace": "t", "span": str(index)})
        assert [s["span"] for s in recorder.spans()] == ["2", "3", "4"]
        assert recorder.dropped == 2
        assert recorder.recorded == 5

    def test_filter_by_trace_and_grouping(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record({"trace": "a", "span": "1"})
        recorder.record({"trace": "b", "span": "2"})
        recorder.record({"trace": "a", "span": "3"})
        assert [s["span"] for s in recorder.spans("a")] == ["1", "3"]
        assert set(recorder.traces()) == {"a", "b"}

    def test_jsonl_round_trip(self):
        recorder = TraceRecorder(enabled=True)
        ctx = TraceContext(mint_trace_id())
        record_span("unit", ctx, 1.0, 1.5, recorder=recorder, k="v")
        lines = recorder.to_jsonl().strip().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed["name"] == "unit"
        assert parsed["dur"] == pytest.approx(0.5)
        assert parsed["attrs"] == {"k": "v"}

    def test_stats(self):
        recorder = TraceRecorder(maxlen=10, enabled=True)
        recorder.record({"trace": "t", "span": "s"})
        stats = recorder.stats
        assert stats["retained"] == 1
        assert stats["maxlen"] == 10
        assert stats["enabled"] is True

    def test_clear(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record({"trace": "t", "span": "s"})
        recorder.clear()
        assert recorder.spans() == []
        assert recorder.recorded == 0


class TestRecordSpan:
    def test_parents_under_context_and_returns_child(self):
        recorder = TraceRecorder(enabled=True)
        root = TraceContext("f" * 16, "a" * 8)
        child_ctx = record_span("stage", root, 0.0, 1.0, recorder=recorder)
        [rec] = recorder.spans()
        assert rec["trace"] == root.trace_id
        assert rec["parent"] == root.span_id
        assert rec["span"] == child_ctx.span_id
        assert child_ctx.trace_id == root.trace_id

    def test_negative_interval_clamped(self):
        recorder = TraceRecorder(enabled=True)
        record_span("x", TraceContext("t"), 2.0, 1.0, recorder=recorder)
        assert recorder.spans()[0]["dur"] == 0.0


class TestAmbientContext:
    def test_default_is_none(self):
        assert current_trace() is None

    def test_use_trace_scopes_and_restores(self):
        ctx = TraceContext("t" * 16, "a" * 8)
        with use_trace(ctx) as scoped:
            assert scoped is ctx
            assert current_trace() is ctx
        assert current_trace() is None

    def test_nested_scopes_restore_outer(self):
        outer = TraceContext("t" * 16, "a" * 8)
        inner = TraceContext("t" * 16, "b" * 8)
        with use_trace(outer):
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is outer

    def test_ambient_context_is_thread_local(self):
        ctx = TraceContext("t" * 16, "a" * 8)
        seen = []

        def probe():
            seen.append(current_trace())

        with use_trace(ctx):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen == [None]


class TestSpanContextManager:
    def test_records_and_nests_via_ambient(self):
        recorder = TraceRecorder(enabled=True)
        root = TraceContext("f" * 16, "a" * 8)
        with span("outer", root, recorder=recorder) as outer_ctx:
            assert current_trace() is outer_ctx
            with span("inner", recorder=recorder):
                pass
        spans = {s["name"]: s for s in recorder.spans()}
        assert spans["inner"]["parent"] == spans["outer"]["span"]
        assert spans["outer"]["parent"] == root.span_id

    def test_no_context_yields_untraced(self):
        recorder = TraceRecorder(enabled=True)
        with span("x", recorder=recorder) as ctx:
            assert ctx is None
        assert recorder.spans() == []

    def test_disabled_recorder_yields_untraced(self):
        recorder = TraceRecorder(enabled=False)
        with span("x", TraceContext("t"), recorder=recorder) as ctx:
            assert ctx is None

    def test_exception_captured_in_attrs_and_reraised(self):
        recorder = TraceRecorder(enabled=True)
        with pytest.raises(RuntimeError, match="boom"):
            with span("x", TraceContext("t"), recorder=recorder):
                raise RuntimeError("boom")
        [rec] = recorder.spans()
        assert rec["attrs"]["error"] == "RuntimeError: boom"
