"""REPRO_OBS switch, backend op counting, trainer profiling, CLI report."""

import io

import numpy as np
import pytest

from repro.backend import get_backend
from repro.obs import (
    CountingBackend,
    get_recorder,
    global_registry,
    instrument_backend,
    maybe_instrument_backend,
    obs_enabled,
    set_obs_enabled,
)
from repro.obs.__main__ import _tree_lines, load_spans, main, report


@pytest.fixture()
def obs_off_after(request):
    """Restore the env-derived switch (and recorder flag) after the test."""
    yield
    set_obs_enabled(None)


class TestSwitch:
    def test_default_off(self, obs_off_after):
        set_obs_enabled(None)
        assert obs_enabled() is False
        assert get_recorder().enabled is False

    def test_override_flips_recorder_too(self, obs_off_after):
        set_obs_enabled(True)
        assert obs_enabled() is True
        assert get_recorder().enabled is True
        set_obs_enabled(False)
        assert obs_enabled() is False
        assert get_recorder().enabled is False

    def test_env_var_read(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        set_obs_enabled(None)
        try:
            assert obs_enabled() is True
        finally:
            # Re-read with the var gone *inside* the test: the fixture
            # teardown would otherwise race monkeypatch's env restore.
            monkeypatch.delenv("REPRO_OBS")
            set_obs_enabled(None)


class TestCountingBackend:
    def test_ops_counted_and_results_identical(self):
        backend = get_backend()
        counted = instrument_backend(backend)
        counter = global_registry().counter(
            "repro_backend_ops_total", labelnames=("backend", "op")
        )
        name = getattr(backend, "name", "?")
        before = counter.labels(backend=name, op="matmul").value
        a = np.random.default_rng(0).random((4, 4))
        direct = backend.matmul(a, a)
        via_proxy = counted.matmul(a, a)
        assert np.array_equal(direct, via_proxy)
        after = counter.labels(backend=name, op="matmul").value
        assert after == before + 1

    def test_idempotent_wrap(self):
        counted = instrument_backend(get_backend())
        assert instrument_backend(counted) is counted

    def test_wrapped_property(self):
        backend = get_backend()
        assert instrument_backend(backend).__wrapped__ is backend

    def test_non_callables_pass_through(self):
        backend = get_backend()
        counted = instrument_backend(backend)
        assert counted.name == backend.name

    def test_maybe_instrument_follows_switch(self, obs_off_after):
        backend = get_backend()
        set_obs_enabled(False)
        assert maybe_instrument_backend(backend) is backend
        set_obs_enabled(True)
        assert isinstance(maybe_instrument_backend(backend), CountingBackend)


class TestTrainerProfiling:
    def _fit(self):
        from repro.engine.trainer import Trainer, TrainingProgram

        class Program(TrainingProgram):
            def run_epoch(self, epoch, rng):
                return float(epoch)

        trainer = Trainer(Program(), max_epochs=3)
        trainer.fit()
        return trainer

    def test_profile_none_when_disabled(self, obs_off_after):
        set_obs_enabled(False)
        assert self._fit().profile is None

    def test_profile_collected_when_enabled(self, obs_off_after):
        set_obs_enabled(True)
        profile = self._fit().profile
        assert len(profile["epochs"]) == 3
        epoch = profile["epochs"][0]
        assert set(epoch) == {
            "epoch", "epoch_start", "run_epoch", "validate", "total",
        }
        assert profile["phase_seconds"]["run_epoch"] >= 0.0
        assert profile["total_seconds"] > 0.0
        # train.* spans landed under the profile's trace.
        spans = get_recorder().spans(profile["trace_id"])
        names = [s["name"] for s in spans]
        assert names.count("train.epoch") == 3
        assert "train.fit" in names
        assert "train.run_epoch" in names

    def test_history_identical_on_and_off(self, obs_off_after):
        set_obs_enabled(False)
        off = self._fit().history.train_losses
        set_obs_enabled(True)
        on = self._fit().history.train_losses
        assert on == off


class TestReportCLI:
    SPANS = [
        {"trace": "t1", "span": "a", "parent": None,
         "name": "client.request", "start": 0.0, "dur": 0.010, "attrs": {}},
        {"trace": "t1", "span": "b", "parent": "a",
         "name": "server.request", "start": 0.001, "dur": 0.008,
         "attrs": {"model": "stsm"}},
        {"trace": "t1", "span": "c", "parent": "b",
         "name": "service.predict", "start": 0.002, "dur": 0.005, "attrs": {}},
    ]

    def test_tree_nesting(self):
        lines = _tree_lines(self.SPANS)
        assert lines[0].lstrip().startswith("client.request")
        assert lines[1].startswith("    server.request")
        assert lines[2].startswith("      service.predict")

    def test_orphaned_parent_becomes_root(self):
        lines = _tree_lines([
            {"trace": "t", "span": "x", "parent": "gone",
             "name": "lonely", "start": 0.0, "dur": 0.001, "attrs": {}},
        ])
        assert len(lines) == 1

    def test_report_aggregates(self):
        buffer = io.StringIO()
        report(self.SPANS, stream=buffer)
        text = buffer.getvalue()
        assert "3 span(s) across 1 trace(s)" in text
        assert "by span name:" in text
        assert "service.predict" in text

    def test_load_spans_and_main(self, tmp_path, capsys):
        import json

        path = tmp_path / "traces.jsonl"
        path.write_text(
            "".join(json.dumps(s) + "\n" for s in self.SPANS), encoding="utf-8"
        )
        assert len(load_spans(str(path))) == 3
        assert main(["report", str(path), "--trace", "t1"]) == 0
        assert "client.request" in capsys.readouterr().out

    def test_load_spans_rejects_non_span_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no": "trace"}\n', encoding="utf-8")
        with pytest.raises(SystemExit, match="not a span record"):
            load_spans(str(path))
