"""The Forecaster contract, enforced across every model in the library.

Every model — the paper's baselines, the classical methods, the naive
references, and all STSM variants — goes through the same lifecycle
checks on one micro dataset.  This is the test that keeps a future model
addition honest: if it registers a name, it inherits these assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    GEGANForecaster,
    GPKrigingForecaster,
    HistoricalAverageForecaster,
    IDWPersistenceForecaster,
    IGNNKForecaster,
    INCREASEForecaster,
    MatrixCompletionForecaster,
    NearestObservedForecaster,
)
from repro.core import STSM_VARIANTS, STSMConfig
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_pems_bay
from repro.evaluation import forecast_window_starts
from repro.interfaces import FitReport

_TINY_STSM = dict(
    hidden_dim=8, num_blocks=1, tcn_levels=2, gcn_depth=1, epochs=1,
    patience=1, batch_size=8, window_stride=8, top_k=4, gat_heads=2,
)


def _stsm_factory(variant):
    return lambda: STSM_VARIANTS[variant](config=STSMConfig(**_TINY_STSM))


MODEL_FACTORIES = {
    "GE-GAN": lambda: GEGANForecaster(iterations=20),
    "IGNNK": lambda: IGNNKForecaster(iterations=10),
    "INCREASE": lambda: INCREASEForecaster(iterations=10),
    "GP-Kriging": GPKrigingForecaster,
    "MatrixCompletion": lambda: MatrixCompletionForecaster(rank=3, iterations=4),
    "HistoricalAverage": HistoricalAverageForecaster,
    "NearestObserved": NearestObservedForecaster,
    "IDW": IDWPersistenceForecaster,
    # Road-distance variants need a road network; they have their own
    # integration tests, so the contract sweep covers the other variants.
    "STSM": _stsm_factory("STSM"),
    "STSM-R": _stsm_factory("STSM-R"),
    "STSM-NC": _stsm_factory("STSM-NC"),
    "STSM-RNC": _stsm_factory("STSM-RNC"),
    "STSM-trans": _stsm_factory("STSM-trans"),
    "STSM-gat": _stsm_factory("STSM-gat"),
}

#: Models whose fit+predict is fully determined by their constructor seed.
DETERMINISTIC = (
    "GP-Kriging", "MatrixCompletion", "HistoricalAverage",
    "NearestObserved", "IDW", "STSM-RNC",
)


@pytest.fixture(scope="module")
def micro():
    dataset = make_pems_bay(num_sensors=16, num_days=2, seed=42)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=6, horizon=6)
    train_ix, _ = temporal_split(dataset.num_steps)
    starts = forecast_window_starts(dataset, spec, max_windows=3)
    return dataset, split, spec, train_ix, starts


@pytest.fixture(scope="module")
def fitted_models(micro):
    dataset, split, spec, train_ix, _starts = micro
    fitted = {}
    for name, factory in MODEL_FACTORIES.items():
        model = factory()
        report = model.fit(dataset, split, spec, train_ix)
        fitted[name] = (model, report)
    return fitted


@pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
class TestForecasterContract:
    def test_fit_report(self, fitted_models, name):
        _model, report = fitted_models[name]
        assert isinstance(report, FitReport)
        assert report.train_seconds >= 0.0
        assert report.epochs >= 1

    def test_prediction_shape_and_finiteness(self, fitted_models, micro, name):
        dataset, split, spec, _train_ix, starts = micro
        model, _report = fitted_models[name]
        out = model.predict(starts)
        assert out.shape == (len(starts), spec.horizon, len(split.unobserved))
        assert np.all(np.isfinite(out))

    def test_predict_is_idempotent(self, fitted_models, micro, name):
        """Calling predict twice must not mutate model state."""
        _dataset, _split, _spec, _train_ix, starts = micro
        model, _report = fitted_models[name]
        first = model.predict(starts)
        second = model.predict(starts)
        assert np.allclose(first, second)

    def test_predictions_in_plausible_range(self, fitted_models, micro, name):
        """Forecasts stay within a generous band of the data range."""
        dataset, _split, _spec, _train_ix, starts = micro
        model, _report = fitted_models[name]
        out = model.predict(starts)
        spread = dataset.values.max() - dataset.values.min()
        assert out.min() > dataset.values.min() - 3 * spread
        assert out.max() < dataset.values.max() + 3 * spread


@pytest.mark.parametrize("name", DETERMINISTIC)
def test_refit_determinism(micro, name):
    """Same constructor + same data → identical predictions."""
    dataset, split, spec, train_ix, starts = micro
    outputs = []
    for _ in range(2):
        model = MODEL_FACTORIES[name]()
        model.fit(dataset, split, spec, train_ix)
        outputs.append(model.predict(starts))
    assert np.array_equal(outputs[0], outputs[1])
