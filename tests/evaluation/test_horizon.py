"""Per-horizon and per-location error profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import HistoricalAverageForecaster, NearestObservedForecaster
from repro.data import temporal_split
from repro.evaluation import (
    forecast_window_starts,
    horizon_profile,
    location_profile,
    stack_truth,
)


@pytest.fixture()
def fitted_naive(tiny_traffic, tiny_split, tiny_spec):
    model = HistoricalAverageForecaster()
    train_ix, _ = temporal_split(tiny_traffic.num_steps)
    model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
    return model


class TestStackTruth:
    def test_shape_and_content(self, tiny_traffic, tiny_split, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=3)
        truth = stack_truth(tiny_traffic, tiny_split, tiny_spec, starts)
        assert truth.shape == (3, tiny_spec.horizon, len(tiny_split.unobserved))
        s = int(starts[0])
        expected = tiny_traffic.values[
            s + tiny_spec.input_length : s + tiny_spec.total
        ][:, tiny_split.unobserved]
        assert np.allclose(truth[0], expected)


class TestHorizonProfile:
    def test_length_matches_horizon(self, fitted_naive, tiny_traffic, tiny_split, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=4)
        profile = horizon_profile(fitted_naive, tiny_traffic, tiny_split, tiny_spec, starts)
        assert len(profile) == tiny_spec.horizon
        assert all(m.rmse > 0 for m in profile)

    def test_persistence_error_grows_with_lead(self, tiny_traffic, tiny_split, tiny_spec):
        model = NearestObservedForecaster()
        train_ix, _ = temporal_split(tiny_traffic.num_steps)
        model.fit(tiny_traffic, tiny_split, tiny_spec, train_ix)
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=8)
        profile = horizon_profile(model, tiny_traffic, tiny_split, tiny_spec, starts)
        # Persistence degrades with lead time on diurnal data: the last
        # step should be clearly worse than the first.
        assert profile[-1].rmse > profile[0].rmse * 0.9


class TestLocationProfile:
    def test_entries_cover_unobserved(self, fitted_naive, tiny_traffic, tiny_split, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=4)
        entries = location_profile(fitted_naive, tiny_traffic, tiny_split, tiny_spec, starts)
        assert len(entries) == len(tiny_split.unobserved)
        assert {e["location"] for e in entries} == set(tiny_split.unobserved.tolist())

    def test_sorted_worst_first(self, fitted_naive, tiny_traffic, tiny_split, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=4)
        entries = location_profile(fitted_naive, tiny_traffic, tiny_split, tiny_spec, starts)
        rmses = [e["metrics"].rmse for e in entries]
        assert rmses == sorted(rmses, reverse=True)

    def test_distances_positive(self, fitted_naive, tiny_traffic, tiny_split, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=4)
        entries = location_profile(fitted_naive, tiny_traffic, tiny_split, tiny_spec, starts)
        assert all(e["nearest_observed_distance"] > 0 for e in entries)
