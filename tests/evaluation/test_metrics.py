"""Metric definitions (paper §5.1.3) including property-based checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import Metrics, compute_metrics, mae, mape, r_squared, rmse


class TestPointMetrics:
    def test_perfect_prediction(self):
        truth = np.array([1.0, 2.0, 3.0])
        assert rmse(truth, truth) == 0.0
        assert mae(truth, truth) == 0.0
        assert mape(truth, truth) == 0.0
        assert r_squared(truth, truth) == 1.0

    def test_known_rmse_mae(self):
        pred = np.array([0.0, 0.0])
        truth = np.array([3.0, 4.0])
        assert rmse(pred, truth) == pytest.approx(np.sqrt(12.5))
        assert mae(pred, truth) == pytest.approx(3.5)

    def test_mape_fraction(self):
        pred = np.array([90.0])
        truth = np.array([100.0])
        assert mape(pred, truth) == pytest.approx(0.1)

    def test_mape_floor_guards_zero_truth(self):
        out = mape(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(out)

    def test_r2_mean_predictor_is_zero(self):
        truth = np.array([1.0, 2.0, 3.0, 4.0])
        pred = np.full(4, truth.mean())
        assert r_squared(pred, truth) == pytest.approx(0.0)

    def test_r2_negative_for_bad_model(self):
        truth = np.array([1.0, 2.0, 3.0])
        pred = np.array([10.0, -10.0, 30.0])
        assert r_squared(pred, truth) < 0

    def test_r2_constant_truth(self):
        truth = np.ones(4)
        assert r_squared(np.ones(4), truth) == 1.0
        assert r_squared(np.zeros(4), truth) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae(np.array([]), np.array([]))

    def test_multidimensional_flattened(self):
        pred = np.zeros((2, 3))
        truth = np.ones((2, 3))
        assert rmse(pred, truth) == pytest.approx(1.0)


class TestMetricsBundle:
    def test_compute_all(self):
        rng = np.random.default_rng(0)
        truth = rng.normal(50, 10, size=100)
        pred = truth + rng.normal(0, 1, size=100)
        metrics = compute_metrics(pred, truth)
        assert metrics.rmse < 2.0
        assert metrics.r2 > 0.9
        assert set(metrics.as_dict()) == {"RMSE", "MAE", "MAPE", "R2"}

    def test_str_format(self):
        metrics = Metrics(rmse=1.0, mae=0.5, mape=0.1, r2=0.9)
        text = str(metrics)
        assert "RMSE=1.000" in text and "R2=0.900" in text


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=100), st.integers(min_value=0, max_value=10_000))
def test_metric_properties(n, seed):
    rng = np.random.default_rng(seed)
    truth = rng.normal(10, 3, size=n)
    pred = rng.normal(10, 3, size=n)
    assert rmse(pred, truth) >= mae(pred, truth) - 1e-12  # RMSE >= MAE always
    assert r_squared(truth, truth) == 1.0
    # Scaling both by a constant leaves MAPE unchanged and scales RMSE/MAE.
    factor = 3.0
    assert rmse(pred * factor, truth * factor) == pytest.approx(factor * rmse(pred, truth))
    assert mape(pred * factor, truth * factor) == pytest.approx(
        mape(pred, truth), rel=1e-6
    )
