"""Evaluation harness: windows in the test period, averaging, timing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import HistoricalAverageForecaster, IDWPersistenceForecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.evaluation import (
    average_metrics,
    evaluate_forecaster,
    evaluate_on_splits,
    forecast_window_starts,
)


class TestTestWindowStarts:
    def test_all_in_test_period(self, tiny_traffic, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec)
        train_ix, test_ix = temporal_split(tiny_traffic.num_steps)
        assert starts.min() >= test_ix[0]
        assert starts.max() + tiny_spec.total <= tiny_traffic.num_steps

    def test_max_windows_cap(self, tiny_traffic, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=5)
        assert len(starts) <= 5

    def test_cap_spreads_over_period(self, tiny_traffic, tiny_spec):
        starts = forecast_window_starts(tiny_traffic, tiny_spec, max_windows=4)
        full = forecast_window_starts(tiny_traffic, tiny_spec)
        assert starts[0] == full[0]
        assert starts[-1] >= full[-1] - tiny_spec.total


class TestEvaluateForecaster:
    def test_result_fields(self, tiny_traffic, tiny_split, tiny_spec):
        result = evaluate_forecaster(
            HistoricalAverageForecaster(), tiny_traffic, tiny_split, tiny_spec,
            max_test_windows=6,
        )
        assert result.model_name == "HistoricalAverage"
        assert result.dataset_name == tiny_traffic.name
        assert result.num_windows == 6
        assert result.test_seconds >= 0
        assert result.fit_report.train_seconds >= 0

    def test_shape_mismatch_detected(self, tiny_traffic, tiny_split, tiny_spec):
        class Broken(HistoricalAverageForecaster):
            name = "Broken"

            def predict(self, window_starts):
                return np.zeros((1, 1, 1))

        with pytest.raises(ValueError):
            evaluate_forecaster(Broken(), tiny_traffic, tiny_split, tiny_spec, max_test_windows=4)

    def test_invalid_split_detected(self, tiny_traffic, tiny_spec):
        from repro.data import SpaceSplit

        bad = SpaceSplit(np.array([0]), np.array([0]), np.array([1]), "bad")
        with pytest.raises(ValueError):
            evaluate_forecaster(HistoricalAverageForecaster(), tiny_traffic, bad, tiny_spec)


class TestAveraging:
    def test_average_metrics(self, tiny_traffic, tiny_spec):
        splits = [space_split(tiny_traffic.coords, k) for k in ("horizontal", "vertical")]
        results = [
            evaluate_forecaster(
                HistoricalAverageForecaster(), tiny_traffic, s, tiny_spec, max_test_windows=4
            )
            for s in splits
        ]
        mean = average_metrics(results)
        rmses = [r.metrics.rmse for r in results]
        assert mean.rmse == pytest.approx(np.mean(rmses))

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            average_metrics([])

    def test_evaluate_on_splits_fresh_models(self, tiny_traffic, tiny_spec):
        created = []

        def factory():
            model = IDWPersistenceForecaster()
            created.append(model)
            return model

        mean, results = evaluate_on_splits(
            factory, tiny_traffic, tiny_spec,
            splits=[space_split(tiny_traffic.coords, k) for k in ("horizontal", "vertical")],
            max_test_windows=4,
        )
        assert len(created) == 2  # one fresh model per split
        assert len(results) == 2
        assert mean.rmse > 0
