"""Paired bootstrap significance testing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import PairedComparison, paired_bootstrap


@pytest.fixture
def rng():
    return np.random.default_rng(71)


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self, rng):
        truth = rng.normal(size=(40, 6, 4))
        good = truth + rng.normal(0, 0.1, size=truth.shape)
        bad = truth + rng.normal(0, 1.0, size=truth.shape)
        comparison = paired_bootstrap(good, bad, truth, rng=rng)
        assert comparison.delta < 0
        assert comparison.significant
        assert comparison.wins > 0.95

    def test_identical_models_not_significant(self, rng):
        truth = rng.normal(size=(30, 4))
        pred = truth + rng.normal(0, 0.5, size=truth.shape)
        comparison = paired_bootstrap(pred, pred.copy(), truth, rng=rng)
        assert comparison.delta == pytest.approx(0.0)
        assert not comparison.significant

    def test_noise_level_difference_detected(self, rng):
        truth = np.zeros((60, 5))
        a = rng.normal(0, 1.0, size=truth.shape)
        b = rng.normal(0, 1.3, size=truth.shape)
        comparison = paired_bootstrap(a, b, truth, rng=rng)
        assert comparison.rmse_a < comparison.rmse_b

    def test_symmetry(self, rng):
        truth = rng.normal(size=(25, 3))
        a = truth + rng.normal(0, 0.3, size=truth.shape)
        b = truth + rng.normal(0, 0.5, size=truth.shape)
        ab = paired_bootstrap(a, b, truth, rng=np.random.default_rng(1))
        ba = paired_bootstrap(b, a, truth, rng=np.random.default_rng(1))
        assert ab.delta == pytest.approx(-ba.delta)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            paired_bootstrap(np.zeros((5, 2)), np.zeros((5, 3)), np.zeros((5, 2)))

    def test_too_few_windows_rejected(self):
        one = np.zeros((1, 2))
        with pytest.raises(ValueError):
            paired_bootstrap(one, one, one)

    def test_dataclass_fields(self, rng):
        truth = rng.normal(size=(10, 2))
        comparison = paired_bootstrap(truth + 0.1, truth + 0.2, truth, rng=rng)
        assert isinstance(comparison, PairedComparison)
        assert 0.0 <= comparison.p_value <= 1.0
        assert 0.0 <= comparison.wins <= 1.0
