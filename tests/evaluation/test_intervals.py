"""Prediction-interval metrics (PICP, MPIW, Winkler, CRPS)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    crps_from_samples,
    empirical_interval,
    evaluate_intervals,
    mean_interval_width,
    picp,
    winkler_score,
)


class TestEmpiricalInterval:
    def test_bounds_bracket_the_samples(self):
        samples = np.linspace(0.0, 1.0, 101)[:, None]
        lower, upper = empirical_interval(samples, coverage=0.9)
        assert lower[0] == pytest.approx(0.05, abs=1e-6)
        assert upper[0] == pytest.approx(0.95, abs=1e-6)

    def test_rejects_bad_coverage(self):
        with pytest.raises(ValueError, match="coverage"):
            empirical_interval(np.zeros((3, 2)), coverage=1.0)

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="samples"):
            empirical_interval(np.zeros((1, 4)))


class TestPICP:
    def test_full_coverage(self):
        actual = np.array([1.0, 2.0, 3.0])
        assert picp(actual - 1, actual + 1, actual) == 1.0

    def test_half_coverage(self):
        actual = np.array([0.0, 10.0])
        lower = np.array([-1.0, -1.0])
        upper = np.array([1.0, 1.0])
        assert picp(lower, upper, actual) == 0.5

    def test_boundary_counts_as_inside(self):
        assert picp(np.array([1.0]), np.array([2.0]), np.array([2.0])) == 1.0


class TestWidthAndWinkler:
    def test_mean_width(self):
        assert mean_interval_width(np.array([0.0, 1.0]), np.array([2.0, 5.0])) == 3.0

    def test_winkler_equals_width_when_covered(self):
        lower, upper = np.array([0.0]), np.array([4.0])
        assert winkler_score(lower, upper, np.array([2.0]), coverage=0.8) == 4.0

    def test_winkler_penalises_misses(self):
        lower, upper = np.array([0.0]), np.array([4.0])
        covered = winkler_score(lower, upper, np.array([2.0]), coverage=0.8)
        missed = winkler_score(lower, upper, np.array([5.0]), coverage=0.8)
        # penalty = (2 / 0.2) * 1.0 = 10 on top of the width
        assert missed == pytest.approx(covered + 10.0)

    def test_winkler_rejects_bad_coverage(self):
        with pytest.raises(ValueError, match="coverage"):
            winkler_score(np.zeros(1), np.ones(1), np.zeros(1), coverage=0.0)


class TestCRPS:
    def test_degenerate_samples_reduce_to_mae(self):
        """All samples equal x: CRPS collapses to |x − y|."""
        actual = np.array([3.0, -1.0])
        samples = np.tile(np.array([5.0, -1.0]), (4, 1))
        assert crps_from_samples(samples, actual) == pytest.approx(
            np.mean([2.0, 0.0])
        )

    def test_sharper_correct_forecast_scores_better(self):
        rng = np.random.default_rng(0)
        actual = np.zeros(50)
        sharp = rng.normal(0.0, 0.1, size=(64, 50))
        blunt = rng.normal(0.0, 2.0, size=(64, 50))
        assert crps_from_samples(sharp, actual) < crps_from_samples(blunt, actual)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            crps_from_samples(np.zeros((4, 3)), np.zeros(5))

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="samples"):
            crps_from_samples(np.zeros((1, 3)), np.zeros(3))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_crps_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=(int(rng.integers(2, 12)), 6))
        actual = rng.normal(size=6)
        assert crps_from_samples(samples, actual) >= -1e-12


class TestEvaluateIntervals:
    def test_returns_consistent_metrics(self):
        rng = np.random.default_rng(1)
        actual = rng.normal(size=(5, 4))
        samples = actual[None] + rng.normal(0, 0.5, size=(32, 5, 4))
        metrics = evaluate_intervals(samples, actual, coverage=0.8)
        assert metrics.coverage_nominal == 0.8
        assert 0.0 <= metrics.picp <= 1.0
        assert metrics.mpiw > 0.0
        assert metrics.winkler >= metrics.mpiw  # penalty only adds
        assert metrics.crps >= 0.0
        assert set(metrics.as_dict()) == {
            "coverage_nominal", "picp", "mpiw", "winkler", "crps",
        }

    def test_well_calibrated_samples_cover_near_nominal(self):
        """Samples drawn from the true distribution → PICP ≈ nominal."""
        rng = np.random.default_rng(2)
        actual = rng.normal(size=2000)
        samples = rng.normal(size=(256, 2000))
        metrics = evaluate_intervals(samples, actual, coverage=0.9)
        assert abs(metrics.picp - 0.9) < 0.03
