"""ArtifactStore unit suite: tiers, disk round-trips, corruption, views."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.engine import (
    CACHE_DIR_ENV,
    CACHE_MAX_BYTES_ENV,
    ArtifactStore,
    StoreConfig,
    active_store,
    array_key,
    open_store,
    parse_byte_size,
    reset_store,
)
from repro.engine.store import MANIFEST_NAME


def _key(*parts) -> bytes:
    return array_key(*parts)


class TestMemoryTier:
    def test_get_put_roundtrip(self):
        store = ArtifactStore()
        store.put("dtw_pair", _key(1), 2.5)
        assert store.get("dtw_pair", _key(1)) == 2.5
        assert store.get("dtw_pair", _key(2)) is None

    def test_namespace_isolation(self):
        store = ArtifactStore()
        key = _key("shared")
        store.put("dtw_pair", key, 1.0)
        store.put("mask_fill", key, np.ones(3))
        assert store.get("dtw_pair", key) == 1.0
        assert np.array_equal(store.get("mask_fill", key), np.ones(3))
        assert store.get("forecast_window", key) is None

    def test_eviction_under_maxsize(self):
        store = ArtifactStore(maxsize=2)
        keys = [_key(i) for i in range(3)]
        for i, key in enumerate(keys):
            store.put("dtw_pair", key, float(i))
        assert store.get("dtw_pair", keys[0]) is None  # evicted
        assert store.get("dtw_pair", keys[2]) == 2.0
        totals = store.stats["totals"]
        assert totals["memory_items"] == 2

    def test_per_namespace_maxsize(self):
        store = ArtifactStore(maxsize={"mask_fill": 1})
        store.put("mask_fill", _key(1), np.ones(1))
        store.put("mask_fill", _key(2), np.ones(1))
        assert store.get("mask_fill", _key(1)) is None
        assert store.get("mask_fill", _key(2)) is not None

    def test_rejects_unpersistable_values(self):
        store = ArtifactStore()
        with pytest.raises(TypeError):
            store.put("dtw_pair", _key(1), "a string")
        with pytest.raises(TypeError):
            store.put("dtw_pair", _key(1), 7)  # int is not float
        with pytest.raises(TypeError):
            store.put("dtw_pair", "not-bytes", 1.0)

    def test_get_or_compute_computes_once_per_content(self):
        store = ArtifactStore()
        calls = []
        value = store.get_or_compute("dtw_pair", _key("x"), lambda: calls.append(1) or 3.0)
        again = store.get_or_compute("dtw_pair", _key("x"), lambda: calls.append(1) or 4.0)
        assert value == again == 3.0
        assert len(calls) == 1

    def test_concurrent_get_or_put(self):
        store = ArtifactStore()
        results = []
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            for n in range(50):
                value = store.get_or_compute(
                    "dtw_pair", _key(n % 10), lambda n=n: float(n % 10)
                )
                results.append((n % 10, value))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every reader saw the content-correct value for its key.
        assert all(value == float(n) for n, value in results)
        assert len(results) == 8 * 50


class TestDiskTier:
    def test_disk_roundtrip_bitwise(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        arr = np.random.default_rng(0).normal(size=(5, 3))
        arr[0, 0] = np.nan  # NaN payload bits must survive
        store.put("mask_fill", _key("m"), arr)
        store.put("dtw_pair", _key("d"), 0.1 + 0.2)
        assert store.persist() == 2
        assert store.persist() == 0  # dirty set cleared

        fresh = ArtifactStore(disk_dir=tmp_path)
        restored = fresh.get("mask_fill", _key("m"))
        assert restored.tobytes() == arr.tobytes()
        assert restored.dtype == arr.dtype
        assert fresh.get("dtw_pair", _key("d")) == 0.1 + 0.2
        assert fresh.stats["totals"]["disk_hits"] == 2

    def test_disk_promotes_into_memory(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("dtw_pair", _key(1), 5.0)
        store.persist()
        fresh = ArtifactStore(disk_dir=tmp_path)
        fresh.get("dtw_pair", _key(1))
        fresh.get("dtw_pair", _key(1))
        totals = fresh.stats["totals"]
        assert totals["disk_hits"] == 1 and totals["hits"] == 1

    def test_clear_memory_keeps_disk(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("dtw_pair", _key(1), 5.0)
        store.persist()
        store.clear_memory()
        assert store.get("dtw_pair", _key(1)) == 5.0
        assert store.stats["totals"]["disk_hits"] == 1

    def test_corrupted_segment_recovers_as_miss(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("dtw_pair", _key(1), 5.0)
        store.put("mask_fill", _key(2), np.ones(2))
        store.persist()
        segment = next(tmp_path.glob("seg-*dtw_pair*.npz"))
        segment.write_bytes(b"\x00garbage\x00")

        fresh = ArtifactStore(disk_dir=tmp_path)
        with pytest.warns(UserWarning, match="unreadable cache segment"):
            assert fresh.get("dtw_pair", _key(1)) is None
        # Sibling namespace's segment is untouched.
        assert np.array_equal(fresh.get("mask_fill", _key(2)), np.ones(2))
        assert fresh.corrupt_segments == 1

    def test_corrupted_manifest_rescans_segments(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("dtw_pair", _key(1), 5.0)
        store.persist()
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.warns(UserWarning, match="unreadable cache manifest"):
            fresh = ArtifactStore(disk_dir=tmp_path)
        assert fresh.get("dtw_pair", _key(1)) == 5.0

    def test_missing_manifest_rescans_segments(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("dtw_pair", _key(1), 5.0)
        store.persist()
        (tmp_path / MANIFEST_NAME).unlink()
        fresh = ArtifactStore(disk_dir=tmp_path)
        assert fresh.get("dtw_pair", _key(1)) == 5.0

    def test_manifest_merges_concurrent_writers(self, tmp_path):
        a = ArtifactStore(disk_dir=tmp_path)
        b = ArtifactStore(disk_dir=tmp_path)
        a.put("dtw_pair", _key("a"), 1.0)
        b.put("dtw_pair", _key("b"), 2.0)
        a.persist()
        b.persist()  # must not clobber a's manifest entries
        fresh = ArtifactStore(disk_dir=tmp_path)
        assert fresh.get("dtw_pair", _key("a")) == 1.0
        assert fresh.get("dtw_pair", _key("b")) == 2.0

    def test_no_tmp_stragglers_after_persist(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("dtw_pair", _key(1), 5.0)
        store.persist()
        assert not list(tmp_path.glob("*.tmp"))
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == 1

    def test_export_full_contents(self, tmp_path):
        source = ArtifactStore(disk_dir=tmp_path / "src")
        source.put("dtw_pair", _key(1), 1.5)
        source.persist()
        source.clear_memory()  # disk-only entry
        source.put("forecast_window", _key(2), np.arange(4.0))  # memory-only entry
        assert source.export(tmp_path / "dst") == 2
        target = ArtifactStore(disk_dir=tmp_path / "dst")
        assert target.get("dtw_pair", _key(1)) == 1.5
        assert np.array_equal(target.get("forecast_window", _key(2)), np.arange(4.0))


class TestStoreView:
    def test_scope_isolation(self):
        store = ArtifactStore()
        a = store.view("forecast_window", scope=b"model-a")
        b = store.view("forecast_window", scope=b"model-b")
        a.put(3, np.ones(2))
        assert b.get(3) is None
        assert np.array_equal(a.get(3), np.ones(2))
        assert 3 in a and 3 not in b

    def test_unscoped_bytes_keys_pass_through(self):
        store = ArtifactStore()
        view = store.view("dtw_pair")
        view.put(_key("p"), 2.0)
        assert store.get("dtw_pair", _key("p")) == 2.0

    def test_counters_and_len(self):
        store = ArtifactStore()
        view = store.view("forecast_window", scope=b"m")
        assert view.get(1) is None
        view.put(1, np.ones(1))
        assert view.get(1) is not None
        assert view.stats["hits"] == 1 and view.stats["misses"] == 1
        assert len(view) == 1

    def test_clear_resets_counters_not_store(self):
        store = ArtifactStore()
        view = store.view("forecast_window", scope=b"m")
        view.put(1, np.ones(1))
        view.get(1)
        view.clear()
        assert view.stats["hits"] == 0
        assert view.get(1) is not None  # shared state untouched

    def test_get_or_compute(self):
        store = ArtifactStore()
        view = store.view("mask_fill", scope=b"ctx")
        first = view.get_or_compute(_key("mask"), lambda: np.full(2, 7.0))
        second = view.get_or_compute(_key("mask"), lambda: np.full(2, 9.0))
        assert np.array_equal(first, second)
        assert view.stats["hits"] == 1 and view.stats["misses"] == 1


class TestProcessStore:
    @pytest.fixture(autouse=True)
    def _isolate(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        reset_store()
        yield
        reset_store()

    def test_inactive_by_default(self):
        assert active_store() is None
        assert active_store(False) is None

    def test_env_var_activates_disk_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        store = active_store(None)
        assert store is not None and store.disk_dir == tmp_path

    def test_true_forces_memory_store(self):
        store = active_store(True)
        assert store is not None and store.disk_dir is None
        assert active_store(None) is store  # now active process-wide

    def test_open_and_active_share_instance(self, tmp_path):
        opened = open_store(StoreConfig(disk_dir=tmp_path))
        assert active_store(True) is opened
        assert active_store(None) is opened
        assert active_store(False) is None  # explicit off still wins

    def test_env_quota_flows_into_opened_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "2M")
        store = active_store(None)
        assert store is not None and store.max_bytes == 2 << 20

    def test_from_env_overrides_win(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "/elsewhere")
        config = StoreConfig.from_env(disk_dir=str(tmp_path), max_bytes=1024)
        assert config.disk_dir == str(tmp_path)
        assert config.max_bytes == 1024

    def test_parse_byte_size(self):
        assert parse_byte_size("1024") == 1024
        assert parse_byte_size("512K") == 512 << 10
        assert parse_byte_size("512MB") == 512 << 20
        assert parse_byte_size("1.5g") == int(1.5 * (1 << 30))
        assert parse_byte_size(None) is None
        assert parse_byte_size(42) == 42
        with pytest.raises(ValueError):
            parse_byte_size("lots")
        with pytest.raises(ValueError):
            parse_byte_size("-1")


class TestReviewRegressions:
    def test_read_only_store_never_accumulates_dirty(self, tmp_path):
        """A serving worker's store must not leak computed blocks into a
        dirty buffer it will never persist."""
        writer = ArtifactStore(disk_dir=tmp_path)
        writer.put("forecast_window", _key(1), np.ones(2))
        writer.persist()

        serving = ArtifactStore(disk_dir=tmp_path, read_only=True)
        assert np.array_equal(serving.get("forecast_window", _key(1)), np.ones(2))
        for i in range(20):  # fresh blocks computed under live traffic
            serving.put("forecast_window", _key("new", i), np.ones(2))
        assert serving.stats["totals"]["dirty"] == 0
        assert serving.persist() == 0
        # Memory tier still serves the freshly computed blocks.
        assert serving.get("forecast_window", _key("new", 3)) is not None

    def test_unlisted_segment_survives_lost_manifest_merge(self, tmp_path):
        """Two processes racing persist(): the loser's manifest replace
        may drop the winner's entries, but the index rescan re-finds the
        winner's segment from disk."""
        a = ArtifactStore(disk_dir=tmp_path)
        b = ArtifactStore(disk_dir=tmp_path)
        a.put("dtw_pair", _key("a"), 1.0)
        a.persist()
        # Simulate b's stale read-merge-replace clobbering a's entry.
        b.put("dtw_pair", _key("b"), 2.0)
        b.persist()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        a_segment = next(s for s in manifest["segments"] if "dtw_pair" in s)
        del manifest["segments"][a_segment]
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))

        fresh = ArtifactStore(disk_dir=tmp_path)
        assert fresh.get("dtw_pair", _key("a")) == 1.0
        assert fresh.get("dtw_pair", _key("b")) == 2.0

    def test_view_get_or_compute_single_store_probe(self):
        """One view-level miss must record exactly one store-level miss."""
        store = ArtifactStore()
        view = store.view("mask_fill", scope=b"ctx")
        view.get_or_compute(_key("m"), lambda: np.ones(2))
        stats = store.stats["namespaces"]["mask_fill"]
        assert stats["misses"] == 1
        view.get_or_compute(_key("m"), lambda: np.ones(2))
        stats = store.stats["namespaces"]["mask_fill"]
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_manifest_rebuild_keeps_all_keys_of_rescued_segment(self, tmp_path):
        """A rescued multi-key segment must be written back into the
        manifest whole, not truncated to its first key."""
        a = ArtifactStore(disk_dir=tmp_path)
        for i in range(3):
            a.put("dtw_pair", _key("a", i), float(i))
        a.persist()
        # Lose a's manifest entry (the concurrent-replace race).
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["segments"] = {}
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))

        healer = ArtifactStore(disk_dir=tmp_path)  # rescans a's segment
        healer.put("dtw_pair", _key("b"), 9.0)
        healer.persist()  # rewrites the manifest — must list all of a's keys

        trusting = ArtifactStore(disk_dir=tmp_path)
        rebuilt = json.loads((tmp_path / MANIFEST_NAME).read_text())
        a_segment = next(
            spec for spec in rebuilt["segments"].values()
            if len(spec["keys"]) > 1 or _key("a", 0).hex() in spec["keys"]
        )
        assert len(a_segment["keys"]) == 3
        for i in range(3):
            assert trusting.get("dtw_pair", _key("a", i)) == float(i)

    def test_scope_ignores_cache_store_flag(self):
        """cache_store is metric-neutral and must not partition scopes."""
        import dataclasses as dc

        from repro.engine import default_store_scope

        @dc.dataclass
        class _Cfg:
            hidden: int = 8
            cache_store: bool | None = None

        class _Net:
            @staticmethod
            def state_dict():
                return {"w": np.ones(2)}

        class _Model:
            network = _Net()

        a, b = _Model(), _Model()
        a.config = _Cfg(cache_store=True)
        b.config = _Cfg(cache_store=None)
        assert default_store_scope(a) == default_store_scope(b)
        b.config = _Cfg(hidden=16, cache_store=None)  # real change still splits
        assert default_store_scope(a) != default_store_scope(b)

    def test_active_store_treats_integers_by_truthiness(self, tmp_path, monkeypatch):
        """active_store(0) must force isolation even when the process
        has opted in — identity-vs-equality mismatches are not allowed
        to leak artifacts into the shared cache."""
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        reset_store()
        assert active_store(0) is None
        assert active_store(1) is not None
        reset_store()

    def test_config_rejects_integer_cache_store(self):
        from repro.core import STSMConfig

        with pytest.raises(ValueError, match="cache_store"):
            STSMConfig(cache_store=0).validate()
        STSMConfig(cache_store=False).validate()  # real booleans fine


class TestManifestEntryMetadata:
    """Disk-manifest lifecycle metadata: created_at + payload bytes."""

    def test_manifest_records_created_at_and_bytes(self, tmp_path):
        import time

        before = time.time()
        store = ArtifactStore(disk_dir=tmp_path)
        value = np.arange(6.0).reshape(2, 3)
        store.put("dtw_pair", _key("a"), value)
        store.persist()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == 1  # readers stay compatible
        (spec,) = manifest["segments"].values()
        (meta,) = spec["entries"].values()
        assert before <= meta["created_at"] <= time.time()
        assert meta["bytes"] == value.nbytes

    def test_metadata_survives_reload_into_stats(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("dtw_pair", _key("a"), np.arange(3.0))  # 24 bytes
        store.persist()
        fresh = ArtifactStore(disk_dir=tmp_path)
        ns = fresh.stats["namespaces"]["dtw_pair"]
        assert ns["disk_items"] == 1
        assert ns["disk_bytes"] == 24

    def test_created_at_is_first_write_time(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("dtw_pair", _key("a"), np.arange(3.0))
        first = store._entry_meta[("dtw_pair", _key("a").hex())]["created_at"]
        store.put("dtw_pair", _key("a"), np.arange(3.0))
        assert store._entry_meta[("dtw_pair", _key("a").hex())]["created_at"] == first

    def test_old_manifest_without_entries_still_loads(self, tmp_path):
        """Backward compatibility: manifests written before the metadata
        existed (no "entries" key) index and serve bitwise."""
        store = ArtifactStore(disk_dir=tmp_path)
        value = np.arange(5.0)
        store.put("dtw_pair", _key("a"), value)
        store.persist()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        for spec in manifest["segments"].values():
            spec.pop("entries")
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        fresh = ArtifactStore(disk_dir=tmp_path)
        assert fresh.get("dtw_pair", _key("a")).tobytes() == value.tobytes()
        ns = fresh.stats["namespaces"]["dtw_pair"]
        assert ns["disk_items"] == 1  # indexed even without metadata

    def test_rescued_segment_gets_stamped_metadata(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("dtw_pair", _key("a"), np.arange(4.0))  # 32 bytes
        store.persist()
        (tmp_path / MANIFEST_NAME).unlink()
        fresh = ArtifactStore(disk_dir=tmp_path)
        ns = fresh.stats["namespaces"]["dtw_pair"]
        assert ns["disk_items"] == 1
        assert ns["disk_bytes"] == 32

    def test_repersist_carries_metadata_forward(self, tmp_path):
        first = ArtifactStore(disk_dir=tmp_path)
        first.put("dtw_pair", _key("a"), np.arange(3.0))
        first.persist()
        original = json.loads((tmp_path / MANIFEST_NAME).read_text())
        second = ArtifactStore(disk_dir=tmp_path)
        second.put("mask_fill", _key("b"), np.ones(2))
        second.persist()
        merged = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert len(merged["segments"]) == 2
        for name, spec in original["segments"].items():
            assert merged["segments"][name]["entries"] == spec["entries"]


class TestByteStats:
    def test_memory_bytes_are_exact(self):
        store = ArtifactStore()
        store.put("dtw_pair", _key("a"), np.arange(3.0))      # 24 bytes
        store.put("dtw_pair", _key("b"), 1.5)                  # scalar -> 8
        ns = store.stats["namespaces"]["dtw_pair"]
        assert ns["memory_bytes"] == 32
        assert store.stats["totals"]["memory_bytes"] == 32
        assert store.stats["totals"]["disk_bytes"] == 0

    def test_namespace_byte_totals_roll_up(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("dtw_pair", _key("a"), np.arange(3.0))
        store.put("mask_fill", _key("b"), np.ones((4, 4)))
        store.persist()
        totals = store.stats["totals"]
        assert totals["memory_bytes"] == 24 + 128
        assert totals["disk_bytes"] == 24 + 128


class TestConcurrentStats:
    """Per-namespace stats stay coherent under reader/writer pressure."""

    def test_counters_monotone_under_concurrent_readers_writers(self):
        store = ArtifactStore()
        stop = threading.Event()
        errors: list[BaseException] = []
        keys = [_key("k", i) for i in range(32)]

        def writer():
            try:
                index = 0
                while not stop.is_set():
                    store.put("dtw_pair", keys[index % 32], float(index))
                    index += 1
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        def reader():
            try:
                index = 0
                while not stop.is_set():
                    store.get("dtw_pair", keys[index % 32])
                    store.get("dtw_pair", _key("never", index))  # miss
                    index += 1
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def scraper(snapshots):
            try:
                while not stop.is_set():
                    stats = store.stats["namespaces"].get("dtw_pair")
                    if stats is not None:
                        snapshots.append(
                            (stats["hits"], stats["misses"])
                        )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        snapshots: list[tuple[int, int]] = []
        threads = (
            [threading.Thread(target=writer) for _ in range(2)]
            + [threading.Thread(target=reader) for _ in range(3)]
            + [threading.Thread(target=scraper, args=(snapshots,))]
        )
        for t in threads:
            t.start()
        import time

        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        assert not errors, errors
        # Counters only ever go up across scrape snapshots.
        for (h0, m0), (h1, m1) in zip(snapshots, snapshots[1:]):
            assert h1 >= h0
            assert m1 >= m0
        final = store.stats["namespaces"]["dtw_pair"]
        assert final["hits"] > 0 and final["misses"] > 0
        assert final["memory_bytes"] >= 0

    def test_bytes_consistent_after_concurrent_refresh(self, tmp_path):
        """refresh_disk_index during writes keeps disk stats consistent.

        Two stores share one cache directory: a writer persists through
        one handle while the other handle refreshes its disk index; the
        refreshed handle's per-namespace disk bytes must equal the sum
        of what was actually persisted (no double counts, no negatives).
        """
        writer_store = ArtifactStore(disk_dir=tmp_path)
        reader_store = ArtifactStore(disk_dir=tmp_path)
        stop = threading.Event()
        errors: list[BaseException] = []

        def refresher():
            try:
                while not stop.is_set():
                    reader_store.refresh_disk_index()
                    stats = reader_store.stats["namespaces"].get("dtw_pair")
                    if stats is not None:
                        assert stats["disk_bytes"] >= 0
                        assert stats["disk_items"] >= 0
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=refresher)
        thread.start()
        try:
            for index in range(20):
                writer_store.put("dtw_pair", _key("c", index), np.arange(3.0))
                writer_store.persist()
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not errors, errors
        reader_store.refresh_disk_index()
        ns = reader_store.stats["namespaces"]["dtw_pair"]
        assert ns["disk_items"] == 20
        assert ns["disk_bytes"] == 20 * 24
