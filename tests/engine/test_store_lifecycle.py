"""Store lifecycle suite: quota GC, compaction, accounting, API shims.

The PR 10 contract under test: a quota-bounded disk tier stays
bit-exact — a surviving hit returns the identical bytes, an evicted
entry is a plain miss that recomputes, and concurrent readers racing a
GC see hit-or-miss, never corruption.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.engine import (
    CACHE_DIR_ENV,
    ArtifactStore,
    StoreConfig,
    active_store,
    array_key,
    open_store,
    reset_store,
    store_metric_samples,
)
from repro.engine.store import MANIFEST_NAME


def _key(*parts) -> bytes:
    return array_key(*parts)


def _fill(store: ArtifactStore, count: int, *, namespace="mask_fill", shape=(64, 64),
          persist_each=True, tag="") -> None:
    """Write ``count`` distinct array entries, one segment per persist."""
    for i in range(count):
        store.put(namespace, _key(tag, i), np.full(shape, float(i)))
        if persist_each:
            store.persist()


class TestQuotaEviction:
    def test_explicit_gc_enforces_target(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        _fill(store, 4)
        total = store.disk_usage()
        summary = store.gc(target_bytes=total // 2)
        assert summary["evicted_segments"] >= 1
        assert store.disk_usage() <= total // 2
        assert summary["disk_bytes_after"] <= total // 2

    def test_persist_time_gc_keeps_tier_under_quota(self, tmp_path):
        probe = ArtifactStore(disk_dir=tmp_path)
        _fill(probe, 1)
        segment_bytes = probe.disk_usage()
        reset_store()
        quota = int(segment_bytes * 2.5)  # room for two segments, not four
        store = ArtifactStore(disk_dir=tmp_path, max_bytes=quota)
        _fill(store, 4, tag="quota")
        assert store.disk_usage() <= quota
        lifecycle = store.stats["totals"]["lifecycle"]
        assert lifecycle["evicted_segments"] >= 1
        assert lifecycle["quota_bytes"] == quota
        assert lifecycle["quota_headroom_bytes"] >= 0

    def test_lru_order_spares_recently_touched_segment(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        _fill(store, 3)
        time.sleep(0.01)
        store.clear_memory()
        assert store.get("mask_fill", _key("", 0)) is not None  # touch oldest
        total = store.disk_usage()
        store.gc(target_bytes=total // 2)
        store.clear_memory()
        # The touched (otherwise-oldest) segment survived; an untouched
        # older one did not.
        assert store.get("mask_fill", _key("", 0)) is not None
        assert store.get("mask_fill", _key("", 1)) is None

    def test_evicted_entry_is_miss_then_bitwise_identical_recompute(self, tmp_path):
        rng = np.random.default_rng(7)
        value = rng.standard_normal((32, 32))
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("mask_fill", _key("v"), value)
        store.persist()
        store.gc(target_bytes=0)  # evict everything
        store.clear_memory()
        assert store.get("mask_fill", _key("v")) is None  # miss, not garbage
        recomputed = store.get_or_compute("mask_fill", _key("v"), lambda: value.copy())
        assert recomputed.tobytes() == value.tobytes()

    def test_surviving_hit_is_byte_identical_after_gc(self, tmp_path):
        rng = np.random.default_rng(11)
        keep = rng.standard_normal((32, 32))
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("mask_fill", _key("keep"), keep)
        store.persist()
        time.sleep(0.01)
        _fill(store, 2, tag="churn")
        store.clear_memory()
        assert store.get("mask_fill", _key("keep")) is not None  # freshen
        store.gc(target_bytes=int(store.disk_usage() * 0.6))
        store.clear_memory()
        survivor = store.get("mask_fill", _key("keep"))
        assert survivor is not None and survivor.tobytes() == keep.tobytes()

    def test_read_only_store_refuses_gc(self, tmp_path):
        writer = ArtifactStore(disk_dir=tmp_path)
        _fill(writer, 1)
        bundle = ArtifactStore(disk_dir=tmp_path, read_only=True)
        with pytest.raises(RuntimeError, match="read-only"):
            bundle.gc()
        # persist() with a quota must not sneak a gc in either.
        bundle.put("mask_fill", _key("fresh"), np.ones(2))
        assert bundle.persist() == 0
        assert writer.disk_usage() > 0

    def test_gc_leaves_unindexed_foreign_segments_alone(self, tmp_path):
        ours = ArtifactStore(disk_dir=tmp_path)
        _fill(ours, 1, tag="ours")
        theirs = ArtifactStore(disk_dir=tmp_path)
        _fill(theirs, 1, tag="theirs", shape=(8, 8))
        # ``ours`` never refreshed: the foreign segment is not indexed
        # and must survive even a gc to zero.
        ours.gc(target_bytes=0)
        fresh = ArtifactStore(disk_dir=tmp_path)
        assert fresh.get("mask_fill", _key("theirs", 0)) is not None


class TestConcurrentReaders:
    def test_reader_during_gc_sees_hit_or_miss_never_corrupt(self, tmp_path, recwarn):
        values = {i: np.full((48, 48), float(i)) for i in range(6)}
        writer = ArtifactStore(disk_dir=tmp_path)
        for i, value in values.items():
            writer.put("mask_fill", _key("c", i), value)
            writer.persist()
        reader = ArtifactStore(disk_dir=tmp_path, max_loaded_segments=1)
        failures: list[str] = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                reader.clear_memory()
                for i, expected in values.items():
                    got = reader.get("mask_fill", _key("c", i))
                    if got is not None and got.tobytes() != expected.tobytes():
                        failures.append(f"entry {i} corrupted")
                        return

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            total = writer.disk_usage()
            writer.gc(target_bytes=total // 3)
            time.sleep(0.1)
        finally:
            stop.set()
            thread.join()
        assert failures == []
        # Vanished segments are silent misses — no corruption warnings.
        assert not [w for w in recwarn if "unreadable" in str(w.message)]
        assert reader.corrupt_segments == 0

    def test_refresh_prunes_foreign_gc_and_bytes_stay_consistent(self, tmp_path):
        writer = ArtifactStore(disk_dir=tmp_path)
        _fill(writer, 3)
        reader = ArtifactStore(disk_dir=tmp_path)
        before = reader.stats["totals"]
        assert before["disk_items"] == 3
        writer.gc(target_bytes=0)
        changed = reader.refresh_disk_index()
        assert changed < 0  # net shrink reported
        after = reader.stats["totals"]
        assert after["disk_items"] == 0
        assert after["disk_bytes"] == 0  # metadata left with the segments
        assert after["lifecycle"]["disk_file_bytes"] == 0


class TestCompaction:
    def test_duplicate_writer_segments_compact_without_value_drift(self, tmp_path):
        a = ArtifactStore(disk_dir=tmp_path)
        for i in range(4):
            a.put("mask_fill", _key("dup", i), np.full((16, 16), float(i)))
        a.persist()
        b = ArtifactStore(disk_dir=tmp_path)
        for i in range(4):  # same content keys → a's segment goes dead
            b.put("mask_fill", _key("dup", i), np.full((16, 16), float(i)))
        b.persist()
        b.refresh_disk_index()
        summary = b.gc()
        assert summary["compacted_segments"] == 1
        assert summary["reclaimed_bytes"] > 0
        b.clear_memory()
        for i in range(4):
            got = b.get("mask_fill", _key("dup", i))
            assert got is not None and got[0, 0] == float(i)

    def test_sparse_segment_rewritten_dense_preserves_bytes(self, tmp_path):
        rng = np.random.default_rng(3)
        values = {i: rng.standard_normal((16, 16)) for i in range(10)}
        first = ArtifactStore(disk_dir=tmp_path)
        for i, value in values.items():
            first.put("forecast_window", _key("s", i), value)
        first.persist()
        second = ArtifactStore(disk_dir=tmp_path)
        for i in range(8):  # supersede 8 of 10 → first segment 20% live
            second.put("forecast_window", _key("s", i), values[i])
        second.persist()
        summary = second.gc()
        assert summary["compacted_segments"] == 1
        assert summary["compacted_entries"] == 2  # the live stragglers moved
        second.clear_memory()
        for i, value in values.items():
            got = second.get("forecast_window", _key("s", i))
            assert got is not None and got.tobytes() == value.tobytes()
        # A fresh process over the compacted tier sees a consistent manifest.
        fresh = ArtifactStore(disk_dir=tmp_path)
        assert fresh.stats["totals"]["disk_items"] == 10

    def test_compaction_counts_in_stats_and_metrics(self, tmp_path):
        a = ArtifactStore(disk_dir=tmp_path)
        _fill(a, 2, persist_each=False, tag="m")
        a.persist()
        b = ArtifactStore(disk_dir=tmp_path)
        _fill(b, 2, persist_each=False, tag="m")
        b.persist()
        b.refresh_disk_index()
        b.gc()
        lifecycle = b.stats["totals"]["lifecycle"]
        assert lifecycle["compacted_segments"] == 1
        assert lifecycle["gc_runs"] == 1
        names = {name for name, _labels, _value in store_metric_samples(b)}
        assert "repro_store_compacted_segments_total" in names
        assert "repro_store_evicted_bytes_total" in names
        assert "repro_store_disk_file_bytes" in names


class TestByteAccountingRegressions:
    def test_corrupt_segment_scrub_drops_its_byte_accounting(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("mask_fill", _key("x"), np.ones((32, 32)))
        store.persist()
        assert store.stats["totals"]["disk_bytes"] > 0
        segment = next(tmp_path.glob("seg-*.npz"))
        segment.write_bytes(b"not a zip at all")
        store.clear_memory()
        with pytest.warns(UserWarning, match="unreadable"):
            assert store.get("mask_fill", _key("x")) is None
        totals = store.stats["totals"]
        assert totals["disk_items"] == 0
        assert totals["disk_bytes"] == 0  # meta scrubbed with the index

    def test_manifest_rewrite_never_resurrects_deleted_segments(self, tmp_path):
        writer = ArtifactStore(disk_dir=tmp_path)
        _fill(writer, 2)
        victim = ArtifactStore(disk_dir=tmp_path)
        writer.gc(target_bytes=0)
        # ``victim`` still indexes the dead segments; its next persist
        # must not write them back into the manifest.
        victim.put("mask_fill", _key("fresh"), np.ones(4))
        victim.persist()
        import json

        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        for name in manifest["segments"]:
            assert (tmp_path / name).exists()

    def test_quota_accepts_byte_size_strings(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path, max_bytes="1K")
        assert store.max_bytes == 1024
        config = StoreConfig(disk_dir=tmp_path, max_bytes=2048)
        assert config.build().max_bytes == 2048


class TestDeprecatedShims:
    """The pre-PR 10 wiring functions still work, but warn."""

    @pytest.fixture(autouse=True)
    def _isolate(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        reset_store()
        yield
        reset_store()

    def test_configure_store_warns_and_installs(self, tmp_path):
        from repro.engine import configure_store

        with pytest.deprecated_call():
            store = configure_store(disk_dir=tmp_path)
        assert active_store() is store
        assert store.disk_dir == tmp_path

    def test_configure_store_adopts_instance(self):
        from repro.engine import configure_store

        mine = ArtifactStore()
        with pytest.deprecated_call():
            assert configure_store(store=mine) is mine
        assert active_store() is mine

    def test_get_store_warns_and_matches_active(self):
        from repro.engine import get_store

        with pytest.deprecated_call():
            store = get_store()
        assert store is active_store()

    def test_store_active_warns_and_tracks_env(self, tmp_path, monkeypatch):
        from repro.engine import store_active

        with pytest.deprecated_call():
            assert not store_active()
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        with pytest.deprecated_call():
            assert store_active()

    def test_resolve_store_warns_and_keeps_three_state_semantics(self, tmp_path, monkeypatch):
        from repro.engine import resolve_store

        with pytest.deprecated_call():
            assert resolve_store(False) is None
        with pytest.deprecated_call():
            assert resolve_store(None) is None
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        with pytest.deprecated_call():
            assert resolve_store(None) is not None

    def test_shims_shadow_nothing_in_repo(self):
        """The deprecated functions have no remaining in-repo callers
        (this suite aside, which exists to cover the shims)."""
        import subprocess
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        out = subprocess.run(
            ["grep", "-rln", "-e", r"configure_store(", "-e", r"resolve_store(",
             "-e", r"get_store()", "-e", r"store_active()",
             str(root / "src"), str(root / "benchmarks")],
            capture_output=True, text=True,
        ).stdout
        offenders = [
            line for line in out.splitlines()
            if not line.endswith("engine/store.py")  # definitions themselves
        ]
        assert offenders == [], f"deprecated store API still called by {offenders}"


class TestProcessStoreMetrics:
    def test_open_store_registers_collector(self, tmp_path):
        from repro.obs.metrics import global_registry

        try:
            store = open_store(StoreConfig(disk_dir=tmp_path, max_bytes=1 << 20))
            store.put("dtw_pair", _key("m"), 1.0)
            rendered = global_registry().render()
            assert "repro_store_quota_bytes" in rendered
            assert "repro_store_gc_runs_total" in rendered
        finally:
            reset_store()
        assert "repro_store_quota_bytes" not in global_registry().render()
