"""Engine caches: LRU semantics, content keys, bit-exact DTW memoisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import LRUCache, PairwiseDTWCache, array_key
from repro.temporal.dtw import dtw_distance_matrix


class TestArrayKey:
    def test_equal_content_equal_key(self):
        a = np.arange(6, dtype=float)
        b = np.arange(6, dtype=float)
        assert array_key(a) == array_key(b)

    def test_different_content_different_key(self):
        assert array_key(np.arange(6)) != array_key(np.arange(1, 7))

    def test_dtype_and_shape_matter(self):
        a = np.arange(6, dtype=np.int64)
        assert array_key(a) != array_key(a.astype(float))
        assert array_key(a) != array_key(a.reshape(2, 3))

    def test_non_contiguous_normalised(self):
        a = np.arange(12, dtype=float).reshape(3, 4)
        assert array_key(a[:, ::2]) == array_key(a[:, ::2].copy())

    def test_scalar_parts(self):
        assert array_key(np.arange(3), 5) != array_key(np.arange(3), 6)


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats == {"hits": 1, "misses": 1, "size": 1}

    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_get_or_compute(self):
        cache = LRUCache(maxsize=2)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("k", lambda: calls.append(1) or 7)
        assert value == 7
        assert len(calls) == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)

    def test_clear(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == {"hits": 0, "misses": 0, "size": 0}


class TestLRUCacheThreadSafety:
    def test_concurrent_get_put_hammer(self):
        """Many threads mutating one bounded cache: consistent, bounded, correct."""
        import threading

        cache = LRUCache(maxsize=16)
        errors = []

        def worker(tid: int) -> None:
            try:
                rng = np.random.default_rng(tid)
                for _ in range(800):
                    key = int(rng.integers(0, 48))
                    value = cache.get(key)
                    if value is not None and value != key * 2:
                        raise AssertionError(f"corrupt value for {key}: {value}")
                    cache.put(key, key * 2)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(tid,)) for tid in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16
        stats = cache.stats
        assert stats["hits"] + stats["misses"] == 8 * 800

    def test_concurrent_get_or_compute_single_winner(self):
        """Racing misses on one key all observe the same stored value."""
        import threading

        cache = LRUCache(maxsize=4)
        barrier = threading.Barrier(6)
        outcomes = []
        lock = threading.Lock()

        def worker(tid: int) -> None:
            barrier.wait()
            value = cache.get_or_compute("k", lambda: ("value-of", tid))
            with lock:
                outcomes.append(value)

        threads = [threading.Thread(target=worker, args=(tid,)) for tid in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 6
        # One winner: every thread adopted the first value stored.
        assert len(set(outcomes)) == 1
        assert cache.get("k") == outcomes[0]

    def test_single_thread_semantics_unchanged(self):
        cache = LRUCache(maxsize=2)
        assert cache.get_or_compute("a", lambda: 1) == 1
        assert cache.get_or_compute("a", lambda: 2) == 1  # cached
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a" (LRU)
        assert "a" not in cache
        assert len(cache) == 2


class TestPairwiseDTWCache:
    def _profiles(self, n=6, t=16, seed=0):
        return np.random.default_rng(seed).normal(size=(n, t))

    def test_self_matrix_matches_uncached(self):
        profiles = self._profiles()
        cache = PairwiseDTWCache()
        assert np.array_equal(
            cache.distance_matrix(profiles), dtw_distance_matrix(profiles)
        )

    def test_cross_matrix_matches_uncached(self):
        obs = self._profiles(5, 16, seed=1)
        tgt = self._profiles(3, 16, seed=2)
        cache = PairwiseDTWCache()
        assert np.array_equal(
            cache.distance_matrix(obs, tgt), dtw_distance_matrix(obs, tgt)
        )

    def test_band_matches_uncached(self):
        profiles = self._profiles()
        cache = PairwiseDTWCache()
        assert np.array_equal(
            cache.distance_matrix(profiles, band=4),
            dtw_distance_matrix(profiles, band=4),
        )

    def test_band_is_part_of_the_key(self):
        profiles = self._profiles()
        cache = PairwiseDTWCache()
        wide = cache.distance_matrix(profiles)
        narrow = cache.distance_matrix(profiles, band=2)
        assert np.array_equal(wide, dtw_distance_matrix(profiles))
        assert np.array_equal(narrow, dtw_distance_matrix(profiles, band=2))

    def test_unchanged_pairs_hit_cache(self):
        profiles = self._profiles(n=8)
        cache = PairwiseDTWCache()
        cache.distance_matrix(profiles)
        assert cache.stats["hits"] == 0
        # Perturb two rows: only pairs touching them should recompute.
        perturbed = profiles.copy()
        perturbed[0] += 1.0
        perturbed[3] -= 1.0
        before_misses = cache.stats["misses"]
        out = cache.distance_matrix(perturbed)
        unchanged_pairs = 6 * 5 // 2  # pairs among the 6 untouched rows
        assert cache.stats["hits"] == unchanged_pairs
        assert cache.stats["misses"] - before_misses == 8 * 7 // 2 - unchanged_pairs
        assert np.array_equal(out, dtw_distance_matrix(perturbed))

    def test_symmetric_pair_sharing(self):
        # Cross distances reuse entries regardless of argument order.
        obs = self._profiles(4, 16, seed=3)
        tgt = self._profiles(2, 16, seed=4)
        cache = PairwiseDTWCache()
        first = cache.distance_matrix(obs, tgt)
        flipped = cache.distance_matrix(tgt, obs)
        assert np.array_equal(first, flipped.T)
        assert cache.stats["hits"] == first.size

    def test_single_series_is_zero(self):
        cache = PairwiseDTWCache()
        assert np.array_equal(cache.distance_matrix(np.ones((1, 8))), np.zeros((1, 1)))
