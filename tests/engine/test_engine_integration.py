"""End-to-end engine guarantees on the real forecasters.

The refactor onto the shared Trainer must keep fixed-seed training
bit-deterministic, and the engine caches must be invisible in the
numbers (content-addressed, bit-exact).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import STSMConfig, STSMForecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_pems_bay
from repro.evaluation import forecast_window_starts

_FAST = dict(
    hidden_dim=8,
    num_blocks=1,
    tcn_levels=2,
    gcn_depth=1,
    epochs=3,
    patience=3,
    batch_size=8,
    window_stride=8,
    top_k=5,
)


@pytest.fixture(scope="module")
def setting():
    dataset = make_pems_bay(num_sensors=18, num_days=3, seed=21)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=6, horizon=6)
    train_ix, _ = temporal_split(dataset.num_steps)
    return dataset, split, spec, train_ix


def _fit(setting, **overrides):
    dataset, split, spec, train_ix = setting
    model = STSMForecaster(STSMConfig(**{**_FAST, **overrides}))
    report = model.fit(dataset, split, spec, train_ix)
    return model, report


class TestBitDeterminism:
    def test_fixed_seed_fit_is_bit_identical(self, setting):
        dataset, _split, spec, _train_ix = setting
        starts = forecast_window_starts(dataset, spec, max_windows=4)
        model_a, report_a = _fit(setting)
        model_b, report_b = _fit(setting)
        assert report_a.history == report_b.history
        state_a, state_b = model_a.network.state_dict(), model_b.network.state_dict()
        for name in state_a:
            assert np.array_equal(state_a[name], state_b[name]), name
        assert np.array_equal(model_a.predict(starts), model_b.predict(starts))

    def test_engine_caches_populated_during_fit(self, setting):
        model, report = _fit(setting)
        assert report.epochs == _FAST["epochs"]
        # Every epoch resolves its masked view through the caches.
        mask_stats = model._mask_cache.stats
        assert mask_stats["hits"] + mask_stats["misses"] == _FAST["epochs"]
        assert model._dtw_cache.stats["misses"] > 0

    def test_lr_schedule_changes_training(self, setting):
        _model_const, report_const = _fit(setting)
        _model_sched, report_sched = _fit(setting, lr_schedule="step", lr_step_size=1, lr_gamma=0.1)
        assert report_const.history != report_sched.history
