"""Cross-fit integration: the shared store never changes any number.

The contract under test is the one everything else leans on: enabling
the artifact store (memory-only, warm disk, or cold disk in a "new
process") leaves fixed-seed STSM fit metrics and predictions bitwise
identical to per-fit cache isolation, while the second-and-later fits
actually draw on the store.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core import STSMConfig, STSMForecaster
from repro.data import WindowSpec, space_split, temporal_split
from repro.data.synthetic import make_pems_bay
from repro.engine import (
    ArtifactStore,
    CACHE_DIR_ENV,
    StoreConfig,
    open_store,
    reset_store,
)
from repro.evaluation import forecast_window_starts


@pytest.fixture(autouse=True)
def _isolate(monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    reset_store()
    yield
    reset_store()


def _fit(seed: int, cache_store: bool) -> dict:
    dataset = make_pems_bay(num_sensors=14, num_days=1, seed=3)
    split = space_split(dataset.coords, "horizontal")
    spec = WindowSpec(input_length=6, horizon=6)
    train_ix, _ = temporal_split(dataset.num_steps)
    config = STSMConfig(
        epochs=2, patience=2, hidden_dim=8, num_blocks=1, top_k=5,
        window_stride=4, seed=seed, cache_store=cache_store,
    )
    model = STSMForecaster(config)
    report = model.fit(dataset, split, spec, train_ix)
    starts = forecast_window_starts(dataset, spec, max_windows=3)
    predictions = model.predict(starts)
    return {
        "history": list(report.history),
        "best_val_rmse": float(report.extra["best_val_rmse"]),
        "sha": hashlib.sha256(predictions.tobytes()).hexdigest(),
    }


class TestCrossFitParity:
    def test_store_enabled_metrics_bitwise_identical(self):
        baseline = [_fit(seed, False) for seed in (0, 1)]
        store = open_store()
        warm = [_fit(seed, True) for seed in (0, 1)]
        assert warm == baseline
        totals = store.stats["totals"]
        assert totals["hits"] > 0  # the second fit actually reused pairs

    def test_second_fit_hits_store(self):
        store = open_store()
        _fit(0, True)
        after_first = store.stats["totals"]["hits"]
        _fit(1, True)
        assert store.stats["totals"]["hits"] > after_first

    def test_cold_start_from_disk_identical_and_hot(self, tmp_path):
        baseline = _fit(0, False)
        open_store(StoreConfig(disk_dir=tmp_path))
        warm = _fit(0, True)
        assert warm == baseline

        # "New process": fresh store object, only the disk tier survives.
        reset_store()
        cold_store = open_store(store=ArtifactStore(disk_dir=tmp_path))
        cold = _fit(0, True)
        assert cold == baseline
        totals = cold_store.stats["totals"]
        assert totals["disk_hits"] > 0
        assert totals["misses"] == 0  # an identical fit is fully served

    def test_env_var_opts_whole_process_in(self, tmp_path, monkeypatch):
        baseline = _fit(0, False)
        reset_store()
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        # cache_store=None (the default) must now pick the store up.
        assert _fit(0, None) == baseline
        assert any(tmp_path.glob("seg-*.npz"))  # fit persisted its artifacts

    def test_explicit_false_keeps_isolation(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        _fit(0, False)
        assert not any(tmp_path.glob("seg-*.npz"))


class TestHyperparameterSweepReuse:
    def test_unrelated_hyperparameter_change_still_reuses_pairs(self):
        """DTW pairs depend on data, not on e.g. the contrastive weight."""
        store = open_store()
        dataset = make_pems_bay(num_sensors=14, num_days=1, seed=3)
        split = space_split(dataset.coords, "horizontal")
        spec = WindowSpec(input_length=6, horizon=6)
        train_ix, _ = temporal_split(dataset.num_steps)
        for weight in (0.5, 0.1):
            config = STSMConfig(
                epochs=1, patience=1, hidden_dim=8, num_blocks=1, top_k=5,
                window_stride=4, seed=0, cache_store=True,
                contrastive_weight=weight,
            )
            STSMForecaster(config).fit(dataset, split, spec, train_ix)
        stats = store.stats["namespaces"]["dtw_pair"]
        assert stats["hits"] > 0
        assert np.isfinite(stats["misses"])  # namespace live and counted
