"""Disk-persistent checkpoints: EarlyStopping(checkpoint_dir) + Trainer.restore."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.engine import EarlyStopping, Trainer, TrainingProgram
from repro.nn import Linear, init, mse_loss
from repro.optim import SGD


class _RegressionProgram(TrainingProgram):
    """Minimal gradient program: one linear layer on a fixed problem."""

    def __init__(self, seed: int = 0, lr: float = 0.1, batches_per_epoch: int = 3) -> None:
        rng = np.random.default_rng(42)
        self.inputs = rng.normal(size=(24, 4))
        self.targets = self.inputs @ rng.normal(size=(4, 2)) + 0.01 * rng.normal(size=(24, 2))
        self.network = Linear(4, 2, rng=init.default_rng(seed))
        self.optimiser = SGD(self.network.parameters(), lr=lr)
        self.grad_clip = 5.0
        self.batches_per_epoch = batches_per_epoch
        self.val_schedule: list[float] | None = None

    def batches(self, epoch, rng):
        for _ in range(self.batches_per_epoch):
            rows = rng.choice(len(self.inputs), size=8, replace=False)
            yield Tensor(self.inputs[rows]), Tensor(self.targets[rows])

    def compute_loss(self, batch, rng):
        x, y = batch
        return mse_loss(self.network(x), y)

    def validation_score(self, epoch):
        if self.val_schedule is None:
            return None
        return self.val_schedule[min(epoch, len(self.val_schedule) - 1)]


def _fit(program, checkpoint_dir, epochs=6, patience=3):
    early = EarlyStopping(patience=patience, checkpoint_dir=checkpoint_dir)
    trainer = Trainer(
        program, max_epochs=epochs, rng=np.random.default_rng(7), early_stopping=early
    )
    trainer.fit()
    return trainer, early


class TestCheckpointPersistence:
    def test_best_state_written_to_disk(self, tmp_path):
        program = _RegressionProgram()
        program.val_schedule = [5.0, 3.0, 4.0, 4.0, 4.0, 4.0]
        _trainer, early = _fit(program, tmp_path / "ckpt")
        assert (tmp_path / "ckpt" / EarlyStopping.CHECKPOINT_FILE).exists()
        metadata = json.loads((tmp_path / "ckpt" / EarlyStopping.METADATA_FILE).read_text())
        assert metadata["best_score"] == pytest.approx(3.0)
        assert metadata["best_epoch"] == 1

    def test_round_trip_matches_in_memory_snapshot(self, tmp_path):
        program = _RegressionProgram()
        program.val_schedule = [5.0, 3.0, 4.0, 4.0, 4.0, 4.0]
        _trainer, early = _fit(program, tmp_path / "ckpt")
        state, metadata = EarlyStopping.load_checkpoint(tmp_path / "ckpt")
        assert set(state) == set(early.best_state)
        for name, values in early.best_state.items():
            np.testing.assert_array_equal(state[name], values)
        assert metadata["best_score"] == pytest.approx(early.best_score)

    def test_trainer_restore_warm_starts_from_disk(self, tmp_path):
        # First fit persists its best epoch.
        program = _RegressionProgram()
        program.val_schedule = [5.0, 3.0, 4.0, 4.0, 4.0, 4.0]
        _fit(program, tmp_path / "ckpt")
        best = {k: v.copy() for k, v in program.network.state_dict().items()}

        # A fresh process/program: restore pulls the weights back off disk.
        fresh = _RegressionProgram(seed=123)
        early = EarlyStopping(patience=2, checkpoint_dir=tmp_path / "ckpt")
        trainer = Trainer(fresh, max_epochs=0, rng=None, early_stopping=early)
        assert trainer.restore()
        for name, values in fresh.network.state_dict().items():
            np.testing.assert_array_equal(values, best[name])

    def test_restore_prefers_in_memory_snapshot(self, tmp_path):
        program = _RegressionProgram()
        program.val_schedule = [5.0, 3.0, 4.0, 4.0, 4.0, 4.0]
        trainer, early = _fit(program, tmp_path / "ckpt")
        assert early.best_state is not None
        assert trainer.restore()

    def test_restore_without_checkpoint_returns_false(self, tmp_path):
        program = _RegressionProgram()
        trainer = Trainer(program, max_epochs=0, rng=None)
        assert not trainer.restore()
        assert not trainer.restore(tmp_path / "missing")

    def test_no_checkpoint_dir_keeps_memory_only_behaviour(self, tmp_path):
        program = _RegressionProgram()
        program.val_schedule = [5.0, 3.0, 4.0, 4.0, 4.0, 4.0]
        early = EarlyStopping(patience=3)
        Trainer(
            program, max_epochs=6, rng=np.random.default_rng(7), early_stopping=early
        ).fit()
        assert early.best_state is not None
        assert not list(tmp_path.iterdir())

    def test_load_checkpoint_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            EarlyStopping.load_checkpoint(tmp_path)
