"""Trainer + callbacks: determinism, early stopping, scheduler hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.engine import EarlyStopping, History, Trainer, TrainingProgram
from repro.nn import Linear, init, mse_loss
from repro.optim import SGD, StepLR


class _RegressionProgram(TrainingProgram):
    """Minimal gradient program: one linear layer on a fixed problem."""

    def __init__(self, seed: int = 0, lr: float = 0.1, batches_per_epoch: int = 3) -> None:
        rng = np.random.default_rng(42)
        self.inputs = rng.normal(size=(24, 4))
        self.targets = self.inputs @ rng.normal(size=(4, 2)) + 0.01 * rng.normal(size=(24, 2))
        self.network = Linear(4, 2, rng=init.default_rng(seed))
        self.optimiser = SGD(self.network.parameters(), lr=lr)
        self.grad_clip = 5.0
        self.batches_per_epoch = batches_per_epoch
        self.val_schedule: list[float] | None = None

    def batches(self, epoch, rng):
        for _ in range(self.batches_per_epoch):
            rows = rng.choice(len(self.inputs), size=8, replace=False)
            yield Tensor(self.inputs[rows]), Tensor(self.targets[rows])

    def compute_loss(self, batch, rng):
        x, y = batch
        return mse_loss(self.network(x), y)

    def validation_score(self, epoch):
        if self.val_schedule is None:
            return None
        return self.val_schedule[min(epoch, len(self.val_schedule) - 1)]


class TestTrainerDeterminism:
    def test_same_seed_is_bit_identical(self):
        def run():
            program = _RegressionProgram()
            history = Trainer(
                program, max_epochs=5, rng=np.random.default_rng(7)
            ).fit()
            return history, program.network.state_dict()

        history_a, state_a = run()
        history_b, state_b = run()
        assert history_a.train_losses == history_b.train_losses
        for name in state_a:
            assert np.array_equal(state_a[name], state_b[name]), name

    def test_different_seed_differs(self):
        losses = []
        for seed in (7, 8):
            program = _RegressionProgram()
            history = Trainer(
                program, max_epochs=3, rng=np.random.default_rng(seed)
            ).fit()
            losses.append(history.train_losses)
        assert losses[0] != losses[1]

    def test_loss_decreases(self):
        program = _RegressionProgram()
        history = Trainer(program, max_epochs=20, rng=np.random.default_rng(0)).fit()
        assert history.train_losses[-1] < history.train_losses[0]

    def test_negative_max_epochs_rejected(self):
        with pytest.raises(ValueError):
            Trainer(_RegressionProgram(), max_epochs=-1)

    def test_zero_epochs_trains_nothing(self):
        program = _RegressionProgram()
        history = Trainer(program, max_epochs=0, rng=np.random.default_rng(0)).fit()
        assert history.epochs == 0


class TestEarlyStopping:
    def test_restores_best_epoch_weights(self):
        # Validation improves for 3 epochs then worsens; training keeps
        # mutating weights, so the restored state must match the snapshot
        # taken at the best (third) epoch, not the final weights.
        program = _RegressionProgram()
        program.val_schedule = [0.9, 0.5, 0.1, 0.7, 0.8, 0.9, 1.0]
        snapshots = {}
        original_run_epoch = program.run_epoch

        def spying_run_epoch(epoch, rng):
            loss = original_run_epoch(epoch, rng)
            snapshots[epoch] = program.network.state_dict()
            return loss

        program.run_epoch = spying_run_epoch
        early = EarlyStopping(patience=2)
        history = Trainer(
            program, max_epochs=10, rng=np.random.default_rng(3), early_stopping=early
        ).fit()
        # Stopped after epoch index 4 (two non-improving epochs past the best).
        assert history.epochs == 5
        assert early.best_score == pytest.approx(0.1)
        for name, values in snapshots[2].items():
            assert np.array_equal(program.network.state_dict()[name], values), name
        # And the final weights differ from the last epoch's (restore happened).
        assert any(
            not np.array_equal(snapshots[4][name], values)
            for name, values in program.network.state_dict().items()
        )

    def test_nan_scores_never_improve(self):
        early = EarlyStopping(patience=3)
        for _ in range(3):
            early.update(float("nan"), lambda: {})
        assert early.should_stop
        assert early.best_state is None

    def test_restore_without_snapshot_is_noop(self):
        early = EarlyStopping(patience=1)
        called = []
        assert early.restore(called.append) is False
        assert called == []

    def test_patience_validated(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)

    def test_no_validation_signal_runs_all_epochs(self):
        program = _RegressionProgram()  # validation_score() -> None
        early = EarlyStopping(patience=1)
        history = Trainer(
            program, max_epochs=4, rng=np.random.default_rng(0), early_stopping=early
        ).fit()
        assert history.epochs == 4


class TestSchedulerHook:
    def test_scheduler_steps_once_per_epoch(self):
        program = _RegressionProgram(lr=0.4)
        scheduler = StepLR(program.optimiser, step_size=2, gamma=0.5)
        Trainer(
            program, max_epochs=4, rng=np.random.default_rng(0), schedulers=[scheduler]
        ).fit()
        assert scheduler.epoch == 4
        assert program.optimiser.lr == pytest.approx(0.4 * 0.5 ** 2)


class TestHistory:
    def test_records_and_best(self):
        history = History()
        history.record(1.0, 0.5)
        history.record(0.8, None)
        history.record(0.7, 0.3)
        assert history.epochs == len(history) == 3
        assert np.isnan(history.val_scores[1])
        assert history.best_val() == pytest.approx(0.3)

    def test_best_val_empty_is_nan(self):
        assert np.isnan(History().best_val())


class TestProgramDefaults:
    def test_missing_optimiser_rejected(self):
        program = TrainingProgram()
        with pytest.raises(RuntimeError):
            program.train_batch(None, None)

    def test_missing_batches_rejected(self):
        with pytest.raises(NotImplementedError):
            list(TrainingProgram().batches(0, None))

    def test_missing_network_snapshot_rejected(self):
        with pytest.raises(RuntimeError):
            TrainingProgram().state_dict()
