"""Extension features: scattered splits, oracle reference, GRU temporal
module, and the missingness experiment machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import OracleForecaster
from repro.core import STSMConfig, make_stsm
from repro.data import WindowSpec, scattered_split, space_split, temporal_split
from repro.evaluation import evaluate_forecaster, forecast_window_starts


@pytest.fixture(scope="module")
def traffic():
    from repro.data.synthetic import make_pems_bay

    return make_pems_bay(num_sensors=24, num_days=3, seed=41)


class TestScatteredSplit:
    def test_partition(self, traffic):
        split = scattered_split(traffic.coords)
        split.validate(traffic.num_locations)
        assert split.name == "scattered"

    def test_scattered_is_interleaved(self, traffic):
        """Unobserved locations should be spread over the whole extent."""
        split = scattered_split(traffic.coords, rng=np.random.default_rng(1))
        contiguous = space_split(traffic.coords, "horizontal")
        y = traffic.coords[:, 1]
        scattered_spread = np.ptp(y[split.unobserved])
        contiguous_spread = np.ptp(y[contiguous.unobserved])
        assert scattered_spread > contiguous_spread

    def test_scattered_neighbours_closer(self, traffic):
        """Under scattering, unobserved locations have closer observed
        neighbours than under a contiguous split — the premise of the
        paper's motivation."""
        from repro.graph import euclidean_distance_matrix

        distances = euclidean_distance_matrix(traffic.coords)

        def mean_nearest(split):
            block = distances[np.ix_(split.unobserved, split.observed)]
            return block.min(axis=1).mean()

        scattered = scattered_split(traffic.coords, rng=np.random.default_rng(2))
        contiguous = space_split(traffic.coords, "horizontal")
        assert mean_nearest(scattered) < mean_nearest(contiguous)

    def test_deterministic_with_rng(self, traffic):
        a = scattered_split(traffic.coords, rng=np.random.default_rng(5))
        b = scattered_split(traffic.coords, rng=np.random.default_rng(5))
        assert np.array_equal(a.test, b.test)


class TestOracle:
    def test_fit_predict_shapes(self, traffic):
        split = space_split(traffic.coords, "horizontal")
        spec = WindowSpec(8, 8)
        oracle = OracleForecaster(
            STSMConfig(hidden_dim=8, num_blocks=1, gcn_depth=1, epochs=2,
                       patience=2, batch_size=8, window_stride=8, top_k=5)
        )
        train_ix, _ = temporal_split(traffic.num_steps)
        oracle.fit(traffic, split, spec, train_ix)
        starts = forecast_window_starts(traffic, spec, max_windows=3)
        out = oracle.predict(starts)
        assert out.shape == (3, 8, len(split.unobserved))
        assert np.all(np.isfinite(out))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OracleForecaster().predict(np.array([0]))

    def test_oracle_not_worse_than_blind_stsm(self, traffic):
        """Seeing the region's history should not hurt (diagnostic bound)."""
        split = space_split(traffic.coords, "horizontal")
        spec = WindowSpec(8, 8)
        cfg = STSMConfig(hidden_dim=12, num_blocks=2, gcn_depth=2, epochs=8,
                         patience=4, batch_size=16, window_stride=4, top_k=6)
        blind = evaluate_forecaster(
            make_stsm(config=cfg), traffic, split, spec, max_test_windows=8
        )
        oracle = evaluate_forecaster(
            OracleForecaster(cfg), traffic, split, spec, max_test_windows=8
        )
        assert oracle.metrics.rmse < blind.metrics.rmse * 1.25, (
            f"oracle {oracle.metrics.rmse:.2f} vs blind {blind.metrics.rmse:.2f}"
        )


class TestGRUTemporalVariant:
    def test_trains_end_to_end(self, traffic):
        split = space_split(traffic.coords, "horizontal")
        spec = WindowSpec(8, 8)
        model = make_stsm(
            config=STSMConfig(hidden_dim=8, num_blocks=1, gcn_depth=1, epochs=2,
                              patience=2, batch_size=8, window_stride=8, top_k=5,
                              temporal_module="gru")
        )
        train_ix, _ = temporal_split(traffic.num_steps)
        report = model.fit(traffic, split, spec, train_ix)
        assert report.epochs >= 1
        starts = forecast_window_starts(traffic, spec, max_windows=2)
        assert model.predict(starts).shape == (2, 8, len(split.unobserved))
